"""The LP430 system memory map.

Word-addressed Harvard layout, openMSP430-flavoured:

* **Program memory**: 4K words, addresses ``0x0000 .. 0x0FFF``; the reset
  vector is address 0 (execution starts there after any power-on reset,
  including watchdog-generated ones).
* **Data address space** (loads/stores/peripherals):

  ====================  ======================================
  ``0x0000 .. 0x00FF``  peripheral page (see below)
  ``0x0100 .. 0x0FFF``  RAM (3840 words)
  ====================  ======================================

* **Peripheral page registers** (word addresses):

  ==========  ======  =====================================
  ``P1IN``    0x0020  GPIO input port 1
  ``P2OUT``   0x0021  GPIO output port 2
  ``P3IN``    0x0022  GPIO input port 3
  ``P4OUT``   0x0023  GPIO output port 4
  ``P5IN``    0x0024  GPIO input port 5
  ``P6OUT``   0x0025  GPIO output port 6
  ``WDTCTL``  0x0080  watchdog control (password ``0x5A__``)
  ``TACTL``   0x0082  auxiliary timer control
  ``TAR``     0x0083  auxiliary timer counter (read)
  ==========  ======  =====================================

The default partitioning used throughout the evaluation mirrors the paper's
Figure 9: the *tainted* task owns RAM ``0x0400 .. 0x07FF`` (so a tainted
store address is repaired with ``AND #0x03FF`` + ``BIS #0x0400``), untainted
code owns the rest of RAM, and the stack grows down from ``0x0FFE``.
"""

from __future__ import annotations

from dataclasses import dataclass

PMEM_SIZE = 4096
DMEM_SIZE = 4096

PERIPH_BASE = 0x0000
PERIPH_END = 0x0100  # exclusive
RAM_BASE = 0x0100
RAM_END = DMEM_SIZE  # exclusive

P1IN = 0x0020
P2OUT = 0x0021
P3IN = 0x0022
P4OUT = 0x0023
P5IN = 0x0024
P6OUT = 0x0025
WDTCTL = 0x0080
TACTL = 0x0082
TAR = 0x0083

#: Symbols the assembler exposes (usable as ``&WDTCTL`` etc.).
PERIPHERAL_SYMBOLS = {
    "P1IN": P1IN,
    "P2OUT": P2OUT,
    "P3IN": P3IN,
    "P4OUT": P4OUT,
    "P5IN": P5IN,
    "P6OUT": P6OUT,
    "WDTCTL": WDTCTL,
    "TACTL": TACTL,
    "TAR": TAR,
}

#: Figure 9 partitioning: the tainted task's RAM window.
TAINTED_RAM_BASE = 0x0400
TAINTED_RAM_END = 0x0800  # exclusive
TAINTED_RAM_MASK = 0x03FF  # AND-mask confining an offset to the window

STACK_TOP = 0x0FFE

#: Watchdog password (high byte of any WDTCTL write).
WDT_PASSWORD = 0x5A


@dataclass(frozen=True)
class MemoryRegion:
    """A named half-open word-address interval in the data space."""

    name: str
    low: int
    high: int

    def contains(self, address: int) -> bool:
        return self.low <= address < self.high

    @property
    def size(self) -> int:
        return self.high - self.low


PERIPHERAL_REGION = MemoryRegion("peripherals", PERIPH_BASE, PERIPH_END)
RAM_REGION = MemoryRegion("ram", RAM_BASE, RAM_END)
TAINTED_REGION = MemoryRegion("tainted_ram", TAINTED_RAM_BASE, TAINTED_RAM_END)
