"""CLI front-end tests."""

import pytest

from repro.cli import main

CLEAN = """
.task sys trusted
start:
    mov #0x0FFE, sp        ; stack outside the maskable window: a masked
    call #app              ; store can reach anywhere in the partition,
    jmp start              ; including an in-partition stack
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

VULNERABLE = """
.task sys trusted
start:
    mov #0x07FE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

RUNNABLE = """
.task sys trusted
    mov #21, r4
    add r4, r4
    mov r4, &P2OUT
    halt
"""


@pytest.fixture
def source_file(tmp_path):
    def write(text, name="app.s43"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestAnalyze:
    def test_secure_exit_zero(self, source_file, capsys):
        code = main(["analyze", source_file(CLEAN)])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_insecure_exit_one(self, source_file, capsys):
        code = main(["analyze", source_file(VULNERABLE)])
        assert code == 1
        assert "INSECURE" in capsys.readouterr().out

    def test_tree_flag(self, source_file, capsys):
        main(["analyze", source_file(CLEAN), "--tree"])
        assert "node 0" in capsys.readouterr().out

    def test_secret_policy(self, source_file, capsys):
        code = main(
            ["analyze", source_file(CLEAN), "--policy", "secret"]
        )
        assert code == 0

    def test_unknown_policy(self, source_file):
        with pytest.raises(SystemExit):
            main(["analyze", source_file(CLEAN), "--policy", "bogus"])


class TestRepair:
    def test_repairs_and_writes_output(self, source_file, tmp_path, capsys):
        out = tmp_path / "fixed.s43"
        code = main(
            ["repair", source_file(VULNERABLE), "-o", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "SECURE" in text
        assert "&WDTCTL" in out.read_text()

    def test_fundamental_violation_exit_two(self, source_file, capsys):
        bad = ".task sys trusted\n    mov &P1IN, r4\n    halt\n"
        code = main(["repair", source_file(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRunDisasmStats:
    def test_run(self, source_file, capsys):
        code = main(["run", source_file(RUNNABLE)])
        assert code == 0
        out = capsys.readouterr().out
        assert "halted=True" in out
        assert "P2OUT <- 0x002a" in out

    def test_disasm(self, source_file, capsys):
        code = main(["disasm", source_file(RUNNABLE)])
        assert code == 0
        assert "mov" in capsys.readouterr().out

    def test_stats(self, capsys):
        code = main(["stats"])
        assert code == 0
        assert "flip-flops" in capsys.readouterr().out
