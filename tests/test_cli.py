"""CLI front-end tests."""

import json

import pytest

from repro.cli import main
from repro.obs import read_events

CLEAN = """
.task sys trusted
start:
    mov #0x0FFE, sp        ; stack outside the maskable window: a masked
    call #app              ; store can reach anywhere in the partition,
    jmp start              ; including an in-partition stack
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

VULNERABLE = """
.task sys trusted
start:
    mov #0x07FE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

RUNNABLE = """
.task sys trusted
    mov #21, r4
    add r4, r4
    mov r4, &P2OUT
    halt
"""


@pytest.fixture
def source_file(tmp_path):
    def write(text, name="app.s43"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestAnalyze:
    def test_secure_exit_zero(self, source_file, capsys):
        code = main(["analyze", source_file(CLEAN)])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_insecure_exit_one(self, source_file, capsys):
        code = main(["analyze", source_file(VULNERABLE)])
        assert code == 1
        assert "INSECURE" in capsys.readouterr().out

    def test_tree_flag(self, source_file, capsys):
        main(["analyze", source_file(CLEAN), "--tree"])
        assert "node 0" in capsys.readouterr().out

    def test_secret_policy(self, source_file, capsys):
        code = main(
            ["analyze", source_file(CLEAN), "--policy", "secret"]
        )
        assert code == 0

    def test_unknown_policy(self, source_file):
        with pytest.raises(SystemExit):
            main(["analyze", source_file(CLEAN), "--policy", "bogus"])

    def test_json_output(self, source_file, capsys):
        code = main(["analyze", source_file(VULNERABLE), "--json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["secure"] is False
        assert document["violations"]
        assert document["violations"][0]["address"].startswith("0x")
        assert document["tree"]["nodes"] >= 1
        assert "stats" in document

    def test_trace_and_metrics_files(self, source_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "analyze",
                source_file(VULNERABLE),
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 1
        events = read_events(trace)
        assert any(e["event"] == "violation" for e in events)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["metrics"]["counters"]["tracker.instructions"] > 0
        assert snapshot["profile"]["explore"]["calls"] == 1


class TestRepair:
    def test_repairs_and_writes_output(self, source_file, tmp_path, capsys):
        out = tmp_path / "fixed.s43"
        code = main(
            ["repair", source_file(VULNERABLE), "-o", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "SECURE" in text
        assert "&WDTCTL" in out.read_text()

    def test_fundamental_violation_exit_two(self, source_file, capsys):
        bad = ".task sys trusted\n    mov &P1IN, r4\n    halt\n"
        code = main(["repair", source_file(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRunDisasmStats:
    def test_run(self, source_file, capsys):
        code = main(["run", source_file(RUNNABLE)])
        assert code == 0
        out = capsys.readouterr().out
        assert "halted=True" in out
        assert "P2OUT <- 0x002a" in out

    def test_disasm(self, source_file, capsys):
        code = main(["disasm", source_file(RUNNABLE)])
        assert code == 0
        assert "mov" in capsys.readouterr().out

    def test_stats(self, capsys):
        code = main(["stats"])
        assert code == 0
        assert "flip-flops" in capsys.readouterr().out

    def test_stats_json(self, capsys):
        code = main(["stats", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["num_dffs"] > 0
        assert document["cells"]


class TestProfile:
    def test_profile_source_file(self, source_file, capsys):
        code = main(
            ["profile", source_file(VULNERABLE), "--no-repair"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("levelize", "explore", "check", "repair"):
            assert phase in out
        assert "sim.gate_evals" in out
        assert "tree.nodes" in out
        assert "INSECURE" in out

    def test_profile_json(self, source_file, capsys):
        code = main(
            ["profile", source_file(CLEAN), "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["secure"] is True
        assert document["metrics"]["counters"]["sim.gate_evals"] > 0
        assert "levelize" in document["profile"]
        assert "explore" in document["profile"]

    def test_profile_unknown_workload(self):
        with pytest.raises(SystemExit, match="not a file"):
            main(["profile", "no_such_benchmark"])

    def test_profile_registry_name_case_insensitive(self):
        from repro.cli import _resolve_workload

        source, name = _resolve_workload("intavg")
        assert name == "intAVG"
        assert source.strip()
