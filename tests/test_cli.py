"""CLI front-end tests."""

import json

import pytest

from repro.cli import main
from repro.obs import read_events

CLEAN = """
.task sys trusted
start:
    mov #0x0FFE, sp        ; stack outside the maskable window: a masked
    call #app              ; store can reach anywhere in the partition,
    jmp start              ; including an in-partition stack
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

VULNERABLE = """
.task sys trusted
start:
    mov #0x07FE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

RUNNABLE = """
.task sys trusted
    mov #21, r4
    add r4, r4
    mov r4, &P2OUT
    halt
"""


@pytest.fixture
def source_file(tmp_path):
    def write(text, name="app.s43"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestAnalyze:
    def test_secure_exit_zero(self, source_file, capsys):
        code = main(["analyze", source_file(CLEAN)])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_insecure_exit_one(self, source_file, capsys):
        code = main(["analyze", source_file(VULNERABLE)])
        assert code == 1
        assert "INSECURE" in capsys.readouterr().out

    def test_tree_flag(self, source_file, capsys):
        main(["analyze", source_file(CLEAN), "--tree"])
        assert "node 0" in capsys.readouterr().out

    def test_secret_policy(self, source_file, capsys):
        code = main(
            ["analyze", source_file(CLEAN), "--policy", "secret"]
        )
        assert code == 0

    def test_unknown_policy(self, source_file):
        with pytest.raises(SystemExit):
            main(["analyze", source_file(CLEAN), "--policy", "bogus"])

    def test_json_output(self, source_file, capsys):
        code = main(["analyze", source_file(VULNERABLE), "--json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["secure"] is False
        assert document["violations"]
        assert document["violations"][0]["address"].startswith("0x")
        assert document["tree"]["nodes"] >= 1
        assert "stats" in document

    def test_trace_and_metrics_files(self, source_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "analyze",
                source_file(VULNERABLE),
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 1
        events = read_events(trace)
        assert any(e["event"] == "violation" for e in events)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["metrics"]["counters"]["tracker.instructions"] > 0
        assert snapshot["profile"]["explore"]["calls"] == 1


class TestRepair:
    def test_repairs_and_writes_output(self, source_file, tmp_path, capsys):
        out = tmp_path / "fixed.s43"
        code = main(
            ["repair", source_file(VULNERABLE), "-o", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "SECURE" in text
        assert "&WDTCTL" in out.read_text()

    def test_fundamental_violation_exit_two(self, source_file, capsys):
        bad = ".task sys trusted\n    mov &P1IN, r4\n    halt\n"
        code = main(["repair", source_file(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRunDisasmStats:
    def test_run(self, source_file, capsys):
        code = main(["run", source_file(RUNNABLE)])
        assert code == 0
        out = capsys.readouterr().out
        assert "halted=True" in out
        assert "P2OUT <- 0x002a" in out

    def test_disasm(self, source_file, capsys):
        code = main(["disasm", source_file(RUNNABLE)])
        assert code == 0
        assert "mov" in capsys.readouterr().out

    def test_stats(self, capsys):
        code = main(["stats"])
        assert code == 0
        assert "flip-flops" in capsys.readouterr().out

    def test_stats_json(self, capsys):
        code = main(["stats", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["num_dffs"] > 0
        assert document["cells"]


class TestProfile:
    def test_profile_source_file(self, source_file, capsys):
        code = main(
            ["profile", source_file(VULNERABLE), "--no-repair"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("levelize", "explore", "check", "repair"):
            assert phase in out
        assert "sim.gate_evals" in out
        assert "tree.nodes" in out
        assert "INSECURE" in out

    def test_profile_json(self, source_file, capsys):
        code = main(
            ["profile", source_file(CLEAN), "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["secure"] is True
        assert document["metrics"]["counters"]["sim.gate_evals"] > 0
        assert "levelize" in document["profile"]
        assert "explore" in document["profile"]

    def test_profile_unknown_workload(self):
        with pytest.raises(SystemExit, match="not a file"):
            main(["profile", "no_such_benchmark"])

    def test_profile_registry_name_case_insensitive(self):
        from repro.cli import _resolve_workload

        source, name = _resolve_workload("intavg")
        assert name == "intAVG"

    def test_profile_accepts_budget_flags(self):
        # Satellite requirement: --deadline and --max-paths exist on
        # `repro profile` too (parsing only; a full profile run with a
        # budget is covered by the analyze-path tests).
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["profile", "intavg", "--deadline", "30", "--max-paths", "2"]
        )
        assert args.deadline == 30.0
        assert args.max_paths == 2


# Trusted code branching on an untainted-unknown input port: secure in a
# full exploration (3 paths), honestly inconclusive when truncated.
FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""


class TestResilience:
    def test_inconclusive_exit_three(self, source_file, capsys):
        code = main(
            ["analyze", source_file(FORKY), "--max-paths", "1"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "INCONCLUSIVE" in out
        assert "max_paths" in out

    def test_full_exploration_still_exit_zero(self, source_file, capsys):
        code = main(["analyze", source_file(FORKY)])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_deadline_flag_zero_is_inconclusive(self, source_file):
        code = main(
            ["analyze", source_file(FORKY), "--deadline", "0"]
        )
        assert code == 3

    def test_missing_source_exit_four(self, capsys):
        code = main(["analyze", "/no/such/file.s43"])
        assert code == 4
        assert "error[INPUT]" in capsys.readouterr().err

    def test_bad_assembly_exit_four(self, source_file, capsys):
        code = main(["analyze", source_file(".bogus directive\n")])
        assert code == 4
        assert "error[INPUT]" in capsys.readouterr().err

    def test_json_error_document(self, source_file, capsys):
        code = main(["analyze", "/no/such/file.s43", "--json"])
        assert code == 4
        document = json.loads(capsys.readouterr().out)
        assert document["error"]["code"] == "INPUT"
        assert document["error"]["exit_code"] == 4
        assert document["error"]["message"]

    def test_corrupt_checkpoint_exit_five(
        self, source_file, tmp_path, capsys
    ):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage")
        code = main(
            ["analyze", source_file(FORKY), "--resume", str(bad)]
        )
        assert code == 5
        assert "error[CHECKPOINT" in capsys.readouterr().err

    def test_json_verdict_fields(self, source_file, capsys):
        code = main(
            [
                "analyze",
                source_file(FORKY),
                "--max-paths", "1",
                "--json",
            ]
        )
        assert code == 3
        document = json.loads(capsys.readouterr().out)
        assert document["verdict"] == "inconclusive"
        assert document["degraded"] is True
        assert document["exhausted_budgets"] == ["max_paths"]

    def test_checkpoint_then_resume_matches(
        self, source_file, tmp_path, capsys
    ):
        path = source_file(FORKY)
        ckpt = tmp_path / "run.ckpt"
        code = main(
            [
                "analyze", path,
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "1",
            ]
        )
        assert code == 0
        assert ckpt.exists()
        capsys.readouterr()

        code = main(["analyze", path, "--resume", str(ckpt)])
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_resume_against_other_program_is_stale(
        self, source_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.ckpt"
        main(
            [
                "analyze", source_file(FORKY),
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "1",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "analyze", source_file(CLEAN, "other.s43"),
                "--resume", str(ckpt),
            ]
        )
        assert code == 5
        assert "stale" in capsys.readouterr().err

    def test_repair_partial_exit_three(self, source_file, monkeypatch):
        # Exhaust the budget inside the repair loop: the partial result
        # maps to the inconclusive exit code.
        import repro.cli as cli_module

        real = cli_module.secure_compile

        def budgeted(source, **kwargs):
            from repro.resilience import AnalysisBudget

            kwargs["budget"] = AnalysisBudget(max_paths=0)
            return real(source, **kwargs)

        monkeypatch.setattr(cli_module, "secure_compile", budgeted)
        code = main(["repair", source_file(VULNERABLE)])
        assert code == 3
