"""Unit and property tests for word-level ternary+taint values."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord

WIDTH = 4  # small width keeps brute-force oracles cheap
FULL = (1 << WIDTH) - 1


def tword(draw_bits, draw_x, draw_t, width=WIDTH):
    return TWord(draw_bits, draw_x, draw_t, width)


small_words = st.builds(
    tword,
    st.integers(0, FULL),
    st.integers(0, FULL),
    st.integers(0, FULL),
)


def concretize(word, assignment):
    """Concrete value of *word* with X bits filled from *assignment* bits."""
    value = word.bits
    position = 0
    for index in range(word.width):
        if word.xmask >> index & 1:
            if assignment >> position & 1:
                value |= 1 << index
            position += 1
    return value


def all_concretizations(word):
    count = bin(word.xmask).count("1")
    return [concretize(word, combo) for combo in range(1 << count)]


class TestConstruction:
    def test_const(self):
        word = TWord.const(0xBEEF)
        assert word.is_concrete
        assert word.value == 0xBEEF
        assert not word.is_tainted

    def test_unknown(self):
        word = TWord.unknown()
        assert not word.is_concrete
        assert word.xmask == 0xFFFF
        with pytest.raises(ValueError):
            _ = word.value

    def test_canonical_form_zeroes_x_bits(self):
        word = TWord(0b1111, 0b0101, 0, 4)
        assert word.bits == 0b1010

    def test_width_masking(self):
        word = TWord(0x1FFFF, 0, 0, 16)
        assert word.bits == 0xFFFF

    def test_bit_accessor(self):
        word = TWord(0b01, 0b100, 0b10, 4)
        assert word.bit(0) == (ONE, 0)
        assert word.bit(1) == (ZERO, 1)
        assert word.bit(2) == (UNKNOWN, 0)

    def test_repr_marks_taint_and_x(self):
        word = TWord(0b01, 0b100, 0b10, 3)
        assert repr(word) == "TWord(X0'1)"


class TestPossibleValues:
    def test_concrete_single(self):
        assert list(TWord.const(7, 4).possible_values()) == [7]

    def test_two_unknown_bits(self):
        word = TWord(0b1000, 0b0011, 0, 4)
        assert sorted(word.possible_values()) == [8, 9, 10, 11]

    def test_limit_enforced(self):
        word = TWord.unknown(16)
        with pytest.raises(ValueError):
            list(word.possible_values(limit=8))


class TestBitwiseOracle:
    """Symbolic bitwise ops versus brute-force value/influence oracles."""

    @given(small_words, small_words)
    @settings(max_examples=300)
    def test_and_or_xor_sound_and_value_exact(self, a, b):
        for op, ref in (
            (lambda x, y: x & y, lambda x, y: x & y),
            (lambda x, y: x | y, lambda x, y: x | y),
            (lambda x, y: x ^ y, lambda x, y: x ^ y),
        ):
            out = op(a, b)
            results = {
                ref(ca, cb)
                for ca in all_concretizations(a)
                for cb in all_concretizations(b)
            }
            # Every concrete outcome must be covered by the symbolic result.
            for result in results:
                covered = (result & ~out.xmask) == out.bits
                assert covered
            # Known output bits must be constant across concretizations.
            for index in range(WIDTH):
                if not (out.xmask >> index & 1):
                    assert len({r >> index & 1 for r in results}) == 1

    @given(small_words, small_words)
    @settings(max_examples=300)
    def test_and_taint_matches_bitwise_glift(self, a, b):
        from repro.logic.glift import GATE_FUNCTIONS, glift_eval

        out = a & b
        for index in range(WIDTH):
            value_a, taint_a = a.bit(index)
            value_b, taint_b = b.bit(index)
            expect_value, expect_taint = glift_eval(
                GATE_FUNCTIONS["AND2"], (value_a, value_b), (taint_a, taint_b)
            )
            assert out.bit(index) == (expect_value, expect_taint)

    @given(small_words, small_words)
    @settings(max_examples=300)
    def test_or_taint_matches_bitwise_glift(self, a, b):
        from repro.logic.glift import GATE_FUNCTIONS, glift_eval

        out = a | b
        for index in range(WIDTH):
            value_a, taint_a = a.bit(index)
            value_b, taint_b = b.bit(index)
            expect_value, expect_taint = glift_eval(
                GATE_FUNCTIONS["OR2"], (value_a, value_b), (taint_a, taint_b)
            )
            assert out.bit(index) == (expect_value, expect_taint)

    @given(small_words)
    @settings(max_examples=100)
    def test_invert_roundtrip(self, a):
        out = ~~a
        assert out == a

    def test_and_masking_kills_taint(self):
        # Tainted unknown word ANDed with an untainted constant mask: only
        # the bits the mask keeps stay tainted -- this is the paper's
        # software masked addressing in miniature (Figure 9).
        address = TWord.unknown(16, tmask=0xFFFF)
        mask = TWord.const(0x03FF)
        out = address & mask
        assert out.tmask == 0x03FF
        assert out.xmask == 0x03FF

    def test_bis_pins_base_untainted(self):
        masked = TWord(0, 0x03FF, 0x03FF, 16)
        base = TWord.const(0x0400)
        out = masked | base
        assert out.bit(10) == (ONE, 0)
        assert out.tmask == 0x03FF


class TestArithmetic:
    @given(small_words, small_words)
    @settings(max_examples=200)
    def test_add_value_sound(self, a, b):
        out, carry, _ = a.add(b)
        results = {
            (ca + cb) & FULL
            for ca in all_concretizations(a)
            for cb in all_concretizations(b)
        }
        for result in results:
            assert (result & ~out.xmask) == out.bits
        carries = {
            (ca + cb) >> WIDTH & 1
            for ca in all_concretizations(a)
            for cb in all_concretizations(b)
        }
        if carry[0] != UNKNOWN:
            assert carries == {carry[0]}

    @given(small_words, small_words)
    @settings(max_examples=200)
    def test_add_taint_sound(self, a, b):
        """Any bit an adversary can influence must be tainted (soundness)."""
        out, _, _ = a.add(b)

        def influence_mask():
            mask = 0
            # Vary tainted bits of a and b jointly over all choices, with
            # untainted-X bits enumerated as environment.
            a_taint_bits = [i for i in range(WIDTH) if a.tmask >> i & 1]
            b_taint_bits = [i for i in range(WIDTH) if b.tmask >> i & 1]
            a_env = a.xmask & ~a.tmask
            b_env = b.xmask & ~b.tmask
            a_env_bits = [i for i in range(WIDTH) if a_env >> i & 1]
            b_env_bits = [i for i in range(WIDTH) if b_env >> i & 1]
            for env in range(1 << (len(a_env_bits) + len(b_env_bits))):
                base_a = a.bits
                base_b = b.bits
                for pos, index in enumerate(a_env_bits):
                    if env >> pos & 1:
                        base_a |= 1 << index
                for pos, index in enumerate(b_env_bits):
                    if env >> (pos + len(a_env_bits)) & 1:
                        base_b |= 1 << index
                outs = set()
                for adv in range(
                    1 << (len(a_taint_bits) + len(b_taint_bits))
                ):
                    val_a = base_a & ~a.tmask
                    val_b = base_b & ~b.tmask
                    for pos, index in enumerate(a_taint_bits):
                        if adv >> pos & 1:
                            val_a |= 1 << index
                    for pos, index in enumerate(b_taint_bits):
                        if adv >> (pos + len(a_taint_bits)) & 1:
                            val_b |= 1 << index
                    outs.add((val_a + val_b) & FULL)
                for bit in range(WIDTH):
                    if len({o >> bit & 1 for o in outs}) == 2:
                        mask |= 1 << bit
            return mask

        assert influence_mask() & ~out.tmask == 0

    @given(small_words, small_words)
    @settings(max_examples=150)
    def test_sub_value_sound(self, a, b):
        out, carry, _ = a.sub(b)
        results = {
            (ca - cb) & FULL
            for ca in all_concretizations(a)
            for cb in all_concretizations(b)
        }
        for result in results:
            assert (result & ~out.xmask) == out.bits
        # MSP430 carry is !borrow.
        borrows = {
            1 if ca >= cb else 0
            for ca in all_concretizations(a)
            for cb in all_concretizations(b)
        }
        if carry[0] != UNKNOWN:
            assert borrows == {carry[0]}

    def test_add_concrete(self):
        out, carry, overflow = TWord.const(0xFFFF).add(TWord.const(1))
        assert out.value == 0
        assert carry == (ONE, 0)
        assert overflow[0] == ZERO

    def test_signed_overflow(self):
        out, _, overflow = TWord.const(0x7FFF).add(TWord.const(1))
        assert out.value == 0x8000
        assert overflow == (ONE, 0)

    def test_add_taint_propagates_upward_only(self):
        a = TWord.const(0b0001, 4, tmask=0b0001)
        b = TWord.const(0b0001, 4)
        out, _, _ = a.add(b)
        # bit0 tainted and the carry chain taints upper bits it can reach
        assert out.tmask & 0b0001
        assert not out.tmask & 0b1000 or out.tmask & 0b0110


class TestShifts:
    def test_rra_sign_extends(self):
        word = TWord.const(0x8002)
        out, carry = word.rra()
        assert out.value == 0xC001
        assert carry == (ZERO, 0)

    def test_rra_carry_out(self):
        out, carry = TWord.const(0x0001).rra()
        assert out.value == 0
        assert carry == (ONE, 0)

    def test_rra_taint_follows_bits(self):
        word = TWord.const(0x8000, tmask=0x8000)
        out, _ = word.rra()
        assert out.tmask == 0xC000

    def test_rrc(self):
        out, carry = TWord.const(0x0003).rrc((ONE, 0))
        assert out.value == 0x8001
        assert carry == (ONE, 0)

    def test_rrc_tainted_carry_in(self):
        out, _ = TWord.const(0).rrc((ZERO, 1))
        assert out.tmask == 0x8000

    def test_swpb(self):
        assert TWord.const(0x1234).swpb().value == 0x3412

    def test_swpb_moves_taint(self):
        word = TWord.const(0x1234, tmask=0x00FF)
        assert word.swpb().tmask == 0xFF00

    def test_shifted_left(self):
        word = TWord(0b01, 0b10, 0b01, 4)
        out = word.shifted_left(1)
        assert out.bit(1) == (ONE, 1)
        assert out.bit(2) == (UNKNOWN, 0)


class TestLattice:
    @given(small_words, small_words)
    @settings(max_examples=300)
    def test_merge_covers_both(self, a, b):
        merged = a.merge(b)
        assert merged.covers(a)
        assert merged.covers(b)

    @given(small_words)
    def test_covers_reflexive(self, a):
        assert a.covers(a)

    @given(small_words, small_words, small_words)
    @settings(max_examples=300)
    def test_covers_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    def test_covers_requires_taint_superset(self):
        plain = TWord.const(5)
        tainted = TWord.const(5, tmask=1)
        assert tainted.covers(plain)
        assert not plain.covers(tainted)

    def test_merge_idempotent(self):
        word = TWord(0b10, 0b01, 0b11, 4)
        assert word.merge(word) == word

    def test_x_covers_concrete(self):
        assert TWord.unknown(4).covers(TWord.const(9, 4))
        assert not TWord.const(9, 4).covers(TWord.unknown(4))


class TestTaintHelpers:
    def test_with_taint(self):
        word = TWord.const(3).with_taint(0xF)
        assert word.tmask == 0xF

    def test_taint_all(self):
        assert TWord.const(3, 4).taint_all().tmask == 0xF

    def test_or_taint(self):
        word = TWord.const(3, 4, tmask=0b01).or_taint(0b10)
        assert word.tmask == 0b11

    def test_hash_and_eq(self):
        a = TWord(1, 2, 4, 16)
        b = TWord(1, 2, 4, 16)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TWord(1, 2, 5, 16)
