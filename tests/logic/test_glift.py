"""Tests for GLIFT taint semantics, including the paper's Figure 1 table."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import glift
from repro.logic.ternary import ONE, UNKNOWN, ZERO, concretizations

#: Figure 1 of the paper: (A, AT, B, BT, O, OT) for a NAND gate.
FIGURE1_NAND_ROWS = [
    (0, 0, 0, 0, 1, 0),
    (0, 0, 0, 1, 1, 0),
    (0, 0, 1, 0, 1, 0),
    (0, 0, 1, 1, 1, 0),
    (0, 1, 0, 0, 1, 0),
    (0, 1, 0, 1, 1, 1),
    (0, 1, 1, 0, 1, 1),
    (0, 1, 1, 1, 1, 1),
    (1, 0, 0, 0, 1, 0),
    (1, 0, 0, 1, 1, 1),
    (1, 0, 1, 0, 0, 0),
    (1, 0, 1, 1, 0, 1),
    (1, 1, 0, 0, 1, 0),
    (1, 1, 0, 1, 1, 1),
    (1, 1, 1, 0, 0, 1),
    (1, 1, 1, 1, 0, 1),
]


class TestFigure1:
    def test_nand_truth_table_matches_paper(self):
        assert glift.glift_nand_truth_table() == FIGURE1_NAND_ROWS

    def test_masking_kills_taint(self):
        # A = 1 tainted, B = 0 untainted: B controls the NAND, no taint out.
        value, taint = glift.glift_eval(
            glift.GATE_FUNCTIONS["NAND2"], (ONE, ZERO), (1, 0)
        )
        assert (value, taint) == (ONE, 0)

    def test_tainted_input_that_can_affect_output(self):
        value, taint = glift.glift_eval(
            glift.GATE_FUNCTIONS["NAND2"], (ZERO, ONE), (1, 0)
        )
        assert (value, taint) == (ONE, 1)


class TestTernaryEval:
    def test_known_dominates(self):
        assert glift.ternary_eval(glift.GATE_FUNCTIONS["AND2"], (ZERO, UNKNOWN)) == ZERO
        assert glift.ternary_eval(glift.GATE_FUNCTIONS["OR2"], (ONE, UNKNOWN)) == ONE

    def test_unknown_result(self):
        assert (
            glift.ternary_eval(glift.GATE_FUNCTIONS["AND2"], (ONE, UNKNOWN))
            == UNKNOWN
        )

    def test_mux_argument_order(self):
        # MUX2 is (sel, a, b): a when sel == 0.
        assert glift.GATE_FUNCTIONS["MUX2"](0, 1, 0) == 1
        assert glift.GATE_FUNCTIONS["MUX2"](1, 1, 0) == 0


class TestGliftEvalSemantics:
    """glift_eval against a brute-force influence oracle (hypothesis)."""

    @given(
        st.sampled_from(sorted(glift.GATE_FUNCTIONS)),
        st.data(),
    )
    def test_taint_equals_influence(self, cell_type, data):
        func = glift.GATE_FUNCTIONS[cell_type]
        arity = glift._cell_arity(cell_type)
        values = tuple(
            data.draw(st.sampled_from((ZERO, ONE, UNKNOWN)), label=f"v{i}")
            for i in range(arity)
        )
        taints = tuple(
            data.draw(st.sampled_from((0, 1)), label=f"t{i}") for i in range(arity)
        )
        value, taint = glift.glift_eval(func, values, taints)

        # Oracle: taint iff some concretization of unknown untainted inputs
        # lets the tainted inputs change the output.
        tainted = [i for i in range(arity) if taints[i]]
        untainted = [i for i in range(arity) if not taints[i]]
        expect_taint = 0
        for u_combo in itertools.product(
            *(concretizations(values[i]) for i in untainted)
        ):
            outs = set()
            for t_combo in itertools.product((0, 1), repeat=len(tainted)):
                assignment = [0] * arity
                for pos, bit in zip(untainted, u_combo):
                    assignment[pos] = bit
                for pos, bit in zip(tainted, t_combo):
                    assignment[pos] = bit
                outs.add(func(*assignment))
            if len(outs) == 2:
                expect_taint = 1
                break
        if not tainted:
            expect_taint = 0
        assert taint == expect_taint

        # Value must cover every concretization of *all* inputs.
        results = {
            func(*combo)
            for combo in itertools.product(
                *(concretizations(v) for v in values)
            )
        }
        if value != UNKNOWN:
            assert results == {value}

    def test_untainted_inputs_never_taint(self):
        for cell_type, func in glift.GATE_FUNCTIONS.items():
            arity = glift._cell_arity(cell_type)
            for values in itertools.product(
                (ZERO, ONE, UNKNOWN), repeat=arity
            ):
                _, taint = glift.glift_eval(func, values, (0,) * arity)
                assert taint == 0


class TestGliftTable:
    @pytest.mark.parametrize("cell_type", sorted(glift.GATE_FUNCTIONS))
    def test_table_complete_and_consistent(self, cell_type):
        table = glift.glift_table(cell_type)
        arity = glift._cell_arity(cell_type)
        assert len(table) == (3 * 2) ** arity
        func = glift.GATE_FUNCTIONS[cell_type]
        for key, (value, taint) in table.items():
            values = key[0::2]
            taints = key[1::2]
            assert (value, taint) == glift.glift_eval(func, values, taints)
