"""Unit and property tests for three-valued logic primitives."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import ternary
from repro.logic.ternary import ONE, UNKNOWN, ZERO

TERNARY = st.sampled_from((ZERO, ONE, UNKNOWN))
CONCRETE = st.sampled_from((ZERO, ONE))


class TestConcreteAgreement:
    """On concrete inputs, ternary gates are plain boolean gates."""

    @pytest.mark.parametrize("a,b", list(itertools.product((0, 1), repeat=2)))
    def test_two_input_gates(self, a, b):
        assert ternary.t_and(a, b) == (a & b)
        assert ternary.t_or(a, b) == (a | b)
        assert ternary.t_xor(a, b) == (a ^ b)
        assert ternary.t_nand(a, b) == 1 - (a & b)
        assert ternary.t_nor(a, b) == 1 - (a | b)
        assert ternary.t_xnor(a, b) == 1 - (a ^ b)

    @pytest.mark.parametrize("a", [0, 1])
    def test_not_buf(self, a):
        assert ternary.t_not(a) == 1 - a
        assert ternary.t_buf(a) == a

    @pytest.mark.parametrize(
        "sel,a,b", list(itertools.product((0, 1), repeat=3))
    )
    def test_mux(self, sel, a, b):
        assert ternary.t_mux(sel, a, b) == (b if sel else a)


class TestUnknownPropagation:
    def test_controlling_values_dominate_x(self):
        assert ternary.t_and(ZERO, UNKNOWN) == ZERO
        assert ternary.t_and(UNKNOWN, ZERO) == ZERO
        assert ternary.t_or(ONE, UNKNOWN) == ONE
        assert ternary.t_or(UNKNOWN, ONE) == ONE
        assert ternary.t_nand(ZERO, UNKNOWN) == ONE
        assert ternary.t_nor(ONE, UNKNOWN) == ZERO

    def test_non_controlling_values_yield_x(self):
        assert ternary.t_and(ONE, UNKNOWN) == UNKNOWN
        assert ternary.t_or(ZERO, UNKNOWN) == UNKNOWN
        assert ternary.t_xor(ZERO, UNKNOWN) == UNKNOWN
        assert ternary.t_xor(UNKNOWN, UNKNOWN) == UNKNOWN
        assert ternary.t_not(UNKNOWN) == UNKNOWN

    def test_mux_unknown_select(self):
        assert ternary.t_mux(UNKNOWN, ONE, ONE) == ONE
        assert ternary.t_mux(UNKNOWN, ZERO, ZERO) == ZERO
        assert ternary.t_mux(UNKNOWN, ZERO, ONE) == UNKNOWN
        assert ternary.t_mux(UNKNOWN, UNKNOWN, UNKNOWN) == UNKNOWN


class TestSoundness:
    """Ternary outputs must cover every concretization (hypothesis)."""

    @given(TERNARY, TERNARY)
    def test_and_or_xor_sound(self, a, b):
        for op, ref in (
            (ternary.t_and, lambda x, y: x & y),
            (ternary.t_or, lambda x, y: x | y),
            (ternary.t_xor, lambda x, y: x ^ y),
        ):
            symbolic = op(a, b)
            results = {
                ref(ca, cb)
                for ca in ternary.concretizations(a)
                for cb in ternary.concretizations(b)
            }
            if symbolic == UNKNOWN:
                continue  # X covers anything
            assert results == {symbolic}

    @given(TERNARY, TERNARY, TERNARY)
    def test_mux_sound(self, sel, a, b):
        symbolic = ternary.t_mux(sel, a, b)
        results = {
            (cb if csel else ca)
            for csel in ternary.concretizations(sel)
            for ca in ternary.concretizations(a)
            for cb in ternary.concretizations(b)
        }
        if symbolic != UNKNOWN:
            assert results == {symbolic}


class TestReductionsAndLattice:
    def test_t_all(self):
        assert ternary.t_all([ONE, ONE, ONE]) == ONE
        assert ternary.t_all([ONE, ZERO, UNKNOWN]) == ZERO
        assert ternary.t_all([ONE, UNKNOWN]) == UNKNOWN
        assert ternary.t_all([]) == ONE

    def test_t_any(self):
        assert ternary.t_any([ZERO, ZERO]) == ZERO
        assert ternary.t_any([ZERO, ONE, UNKNOWN]) == ONE
        assert ternary.t_any([ZERO, UNKNOWN]) == UNKNOWN
        assert ternary.t_any([]) == ZERO

    @given(TERNARY, TERNARY)
    def test_merge_covers_both(self, a, b):
        merged = ternary.merge(a, b)
        assert ternary.covers(merged, a)
        assert ternary.covers(merged, b)

    @given(TERNARY)
    def test_covers_reflexive(self, a):
        assert ternary.covers(a, a)

    def test_covers_x_dominates(self):
        assert ternary.covers(UNKNOWN, ZERO)
        assert ternary.covers(UNKNOWN, ONE)
        assert not ternary.covers(ZERO, UNKNOWN)
        assert not ternary.covers(ZERO, ONE)

    def test_repr(self):
        assert ternary.ternary_repr(ZERO) == "0"
        assert ternary.ternary_repr(ONE) == "1"
        assert ternary.ternary_repr(UNKNOWN) == "X"

    def test_is_known(self):
        assert ternary.is_known(ZERO)
        assert ternary.is_known(ONE)
        assert not ternary.is_known(UNKNOWN)

    def test_concretizations(self):
        assert ternary.concretizations(ZERO) == (ZERO,)
        assert ternary.concretizations(ONE) == (ONE,)
        assert set(ternary.concretizations(UNKNOWN)) == {ZERO, ONE}
