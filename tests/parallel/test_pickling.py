"""Pickling regressions for everything the worker protocol ships.

The coordinator sends work-item snapshots to workers and gets boundary
snapshots back; worker_init receives the program, policy and compiled
circuit.  All of it must survive a pickle round-trip, and a snapshot's
canonical fingerprint must be preserved exactly -- the concrete-visit
dedup table keys on ``_state_digest``, so a digest change across the
process boundary would silently break serial equivalence.
"""

import pickle

import pytest

from repro.core import TaintTracker, default_policy
from repro.core.tracker import _state_digest
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.sim.runner import GateRunner

SOURCE = (
    ".task sys trusted\n"
    "start:\n"
    "    mov #0x0FFE, sp\n"
    "    call #app\n"
    "    jmp start\n"
    ".task app untrusted\n"
    "app:\n"
    "    mov &P1IN, r4\n"
    "    and #0x0003, r4\n"
    "    mov r4, &P2OUT\n"
    "    ret\n"
)


@pytest.fixture(scope="module")
def tracker():
    return TaintTracker(
        assemble(SOURCE, name="pickle_probe"), policy=default_policy()
    )


def _roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def test_soc_state_roundtrip_preserves_digest(tracker):
    soc = tracker.runner.soc
    for _ in range(25):
        soc.step()
        state = soc.snapshot()
        clone = _roundtrip(state)
        assert _state_digest(clone) == _state_digest(state)
        assert clone.cycle == state.cycle
        assert clone.pending_por == state.pending_por


def test_soc_state_roundtrip_resumes_identically(tracker):
    """A restored-from-pickle snapshot must continue exactly like the
    original -- this is what lets a worker adopt coordinator state."""
    soc = tracker.runner.soc
    for _ in range(10):
        soc.step()
    state = soc.snapshot()
    for _ in range(10):
        soc.step()
    after_original = _state_digest(soc.snapshot())

    soc.restore(_roundtrip(state))
    for _ in range(10):
        soc.step()
    assert _state_digest(soc.snapshot()) == after_original


def test_compiled_circuit_roundtrip_drops_caches_and_simulates():
    circuit = compiled_cpu()
    clone = _roundtrip(circuit)
    # derived caches are rebuilt lazily, not shipped
    assert clone._plan_totals == {}
    assert clone._counter_cache == {}
    # and the clone is a working simulation substrate
    program = assemble(SOURCE, name="pickle_probe")
    runner = GateRunner(clone, program)
    runner.run(max_cycles=50)
    reference = GateRunner(compiled_cpu(), program)
    reference.run(max_cycles=50)
    assert _state_digest(runner.soc.snapshot()) == _state_digest(
        reference.soc.snapshot()
    )


def test_program_policy_budget_roundtrip(tracker):
    from repro.resilience.budget import AnalysisBudget

    program = _roundtrip(tracker.program)
    assert program.name == tracker.program.name
    policy = _roundtrip(tracker.policy)
    assert policy.name == tracker.policy.name
    budget = AnalysisBudget(deadline_seconds=5.0, max_rss_mb=512)
    budget.start()
    view = _roundtrip(budget.worker_view())
    assert view.deadline_seconds == 5.0
    assert view.max_rss_mb == 512
    assert view._started_at == budget._started_at
