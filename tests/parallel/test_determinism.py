"""Differential harness: parallel exploration is bit-identical to serial.

For every forking Table 1 workload (the Table 2 violators -- the
non-violators are single-path and never enter the coordinator's merge
machinery), the same analysis runs serially and with 2 and 4 workers.
Everything the analysis reports must be *identical*: verdicts, the full
violation list (kind, condition, cycle, address, task, advisory bit,
order), violated conditions, path/fork/merge/termination counts, the
full execution tree, and the rendered ``report()`` text (modulo the
wall-clock line).  This is the acceptance gate for the speculation-as-
cache design: worker scheduling must never be observable in results.
"""

import re

import pytest

from repro.core import TaintTracker, default_policy
from repro.workloads.registry import TABLE2_VIOLATORS, benchmark

#: The forking workloads: exactly the Table 2 violators (every other
#: Table 1 benchmark explores a single path -- no forks, no merge
#: decisions, nothing for worker scheduling to perturb).
FORKING_WORKLOADS = TABLE2_VIOLATORS

JOB_COUNTS = (1, 2, 4)

_cache = {}


def _analysis(name, jobs):
    key = (name, jobs)
    if key not in _cache:
        program = benchmark(name).service_program()
        _cache[key] = TaintTracker(
            program, policy=default_policy(), jobs=jobs
        ).run()
    return _cache[key]


def _strip_wall(report):
    return re.sub(r"wall=\d+\.\d+s", "wall=<wall>", report)


def _violation_key(violation):
    return (
        violation.kind,
        violation.condition,
        violation.severity,
        violation.cycle,
        violation.address,
        violation.task,
        violation.advisory,
        violation.detail,
    )


def _tree_key(result):
    return [
        (
            node.node_id,
            node.parent,
            node.start_pc,
            node.start_cycle,
            node.pc_taint,
            node.end_reason,
            node.end_pc,
            node.end_cycle,
            node.fork_address,
            tuple(node.children),
        )
        for node in result.tree.nodes.values()
    ]


@pytest.mark.parametrize("name", FORKING_WORKLOADS)
class TestParallelEqualsSerial:
    def test_verdict_and_violations(self, name):
        serial = _analysis(name, 1)
        for jobs in JOB_COUNTS[1:]:
            parallel = _analysis(name, jobs)
            assert parallel.verdict == serial.verdict, f"jobs={jobs}"
            assert [
                _violation_key(v) for v in parallel.violations
            ] == [_violation_key(v) for v in serial.violations], (
                f"jobs={jobs}"
            )
            assert parallel.violated_conditions(
                include_advisory=True
            ) == serial.violated_conditions(include_advisory=True)

    def test_exploration_counters(self, name):
        serial = _analysis(name, 1)
        for jobs in JOB_COUNTS[1:]:
            parallel = _analysis(name, jobs)
            for field in (
                "paths",
                "forks",
                "merges",
                "terminations_by_merge",
                "cycles_simulated",
                "fast_forwarded_cycles",
                "instructions",
                "peak_merged_states",
                "incomplete_paths",
                "drained_paths",
            ):
                assert getattr(parallel.stats, field) == getattr(
                    serial.stats, field
                ), f"stats.{field} at jobs={jobs}"

    def test_execution_tree_identical(self, name):
        serial = _analysis(name, 1)
        for jobs in JOB_COUNTS[1:]:
            assert _tree_key(_analysis(name, jobs)) == _tree_key(
                serial
            ), f"jobs={jobs}"

    def test_full_report_text_identical(self, name):
        """The user-facing deliverable, diffed verbatim at two worker
        counts against serial (only the wall-clock line may differ)."""
        serial = _strip_wall(_analysis(name, 1).report())
        for jobs in (2, 4):
            parallel = _strip_wall(_analysis(name, jobs).report())
            assert parallel == serial, (
                f"report text diverged at jobs={jobs}:\n"
                f"--- serial ---\n{serial}\n"
                f"--- jobs={jobs} ---\n{parallel}"
            )


def test_single_path_program_tolerates_workers():
    """A non-forking program never dispatches more than one chain at a
    time; jobs>1 must still give the serial result (and not hang)."""
    from repro.isa.assembler import assemble

    source = (
        ".task sys trusted\n"
        "start:\n"
        "    mov #0x0FFE, sp\n"
        "    call #app\n"
        "    jmp start\n"
        ".task app untrusted\n"
        "app:\n"
        "    mov &P1IN, r4\n"
        "    and #0x0003, r4\n"
        "    mov r4, &P2OUT\n"
        "    ret\n"
    )
    program = assemble(source, name="single_path")
    parallel = TaintTracker(
        program, policy=default_policy(), jobs=2
    ).run()
    reference = TaintTracker(program, policy=default_policy()).run()
    assert parallel.verdict == reference.verdict == "secure"
    assert parallel.stats.paths == reference.stats.paths


def test_provenance_forces_serial_with_warning():
    """Documented restriction: a provenance recorder cannot ride along
    with out-of-order speculative workers."""
    from repro.obs import ProvenanceRecorder

    program = benchmark("intAVG").service_program()
    tracker = TaintTracker(
        program,
        policy=default_policy(),
        provenance=ProvenanceRecorder(capacity=1 << 12),
        jobs=4,
    )
    with pytest.warns(RuntimeWarning, match="forces serial"):
        assert tracker._parallel_jobs() == 1
        result = tracker.run()
    assert result.verdict == _analysis("intAVG", 1).verdict
