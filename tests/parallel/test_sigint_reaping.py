"""SIGINT/SIGTERM mid-sweep must reap every pool worker.

Regression test for the ``analyze-all --jobs N`` interrupt path: the
stock :class:`~concurrent.futures.ProcessPoolExecutor` behaviour on an
exception is ``shutdown(wait=True)``, which lets already-running workers
finish the whole sweep after Ctrl-C.  ``_run_pool`` must instead notice
the signal promptly, terminate and join every worker, and exit 130 --
leaving no orphan processes holding checkpoints or cache files open.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel.analyze_all import _run_pool
from repro.resilience import AnalysisInterrupted

REPO = Path(__file__).resolve().parents[2]

#: Forking Table 1 workloads slow enough (seconds each) that a signal
#: sent shortly after the workers spin up lands mid-exploration.
SLOW_WORKLOADS = ["tHold", "binSearch"]


def _group_pids(pgid: int) -> list:
    """Every live PID in process group ``pgid`` (scans /proc)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = Path("/proc", entry, "stat").read_text()
        except OSError:
            continue
        # field 5 (after the parenthesised comm, which may hold spaces)
        fields = stat.rsplit(")", 1)[-1].split()
        if len(fields) > 2 and int(fields[2]) == pgid:
            pids.append(int(entry))
    return pids


def test_sigint_mid_sweep_exits_130_and_reaps_workers(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "analyze-all",
            "--workloads",
            *SLOW_WORKLOADS,
            "--jobs",
            "2",
            "-o",
            str(tmp_path / "out.json"),
        ],
        cwd=str(REPO),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        # Wait until both pool workers exist (parent + >=2 children in
        # the fresh session's process group), so the signal is
        # genuinely mid-sweep, then give them a beat to start working.
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    f"sweep exited early with {proc.returncode} before "
                    "the signal was sent"
                )
            if len(_group_pids(proc.pid)) >= 3:
                break
            time.sleep(0.1)
        else:
            pytest.fail("pool workers never appeared")
        time.sleep(1.0)

        # SIGINT the *parent only* -- reaping the children is the
        # parent's job, not the kernel's (no killpg here).
        os.kill(proc.pid, signal.SIGINT)
        exit_code = proc.wait(timeout=30.0)
        assert exit_code == 130

        # No orphans: the whole process group must drain once the
        # parent is gone (allow a moment for exiting workers).
        deadline = time.time() + 10.0
        while time.time() < deadline:
            leftovers = _group_pids(proc.pid)
            if not leftovers:
                break
            time.sleep(0.1)
        assert leftovers == [], f"orphaned worker processes: {leftovers}"
    finally:
        if proc.poll() is None:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.wait(timeout=10.0)


def test_run_pool_raises_typed_interrupt_on_pending_signal():
    """In-process check of the classification: a signal noted before
    the collection loop finishes surfaces as AnalysisInterrupted with
    exit code 130 and the finished/total counts in context."""
    specs = [
        {
            "workload": name,
            "policy": "untrusted",
            "max_cycles": 1_000_000,
            "budget": {"max_paths": 4096},
        }
        for name in SLOW_WORKLOADS
    ]

    def _send_sigint_soon():
        time.sleep(1.0)
        os.kill(os.getpid(), signal.SIGINT)

    import threading

    threading.Thread(target=_send_sigint_soon, daemon=True).start()
    with pytest.raises(AnalysisInterrupted) as excinfo:
        _run_pool(specs, workers=2)
    error = excinfo.value
    assert error.exit_code == 130
    assert error.retriable is True
    assert error.context["reason"] == "SIGINT"
    assert error.context["total"] == len(specs)
