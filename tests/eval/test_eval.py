"""Unit tests for the evaluation harness modules (fast paths only --
full regenerations live in benchmarks/)."""

import pytest

from repro.eval.energy import (
    ENERGY_ACTIVE,
    ENERGY_IDLE,
    EnergyRow,
    cycles_energy,
    energy_rows,
    summarize_energy,
)
from repro.eval.figure1 import boolean_rows, render_figure1, ternary_rows
from repro.eval.figure7 import build_figure7, render_figure7
from repro.eval.formatting import format_table
from repro.eval.table3 import Table3Row, summarize
from repro.eval.table4 import TABLE4, render_table4
from repro.logic.ternary import ONE, ZERO


class TestFormatting:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1), ("longer", 22)], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith("name")
        assert "longer" in lines[-1]
        # columns align
        assert lines[2].count("-") >= 9

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFigure1:
    def test_sixteen_boolean_rows(self):
        assert len(boolean_rows()) == 16

    def test_thirty_six_ternary_rows(self):
        assert len(ternary_rows()) == 36

    def test_render_contains_masking_row(self):
        text = render_figure1()
        assert "1  1   0  0   1  0" in text  # A=1 tainted, B=0: no taint

    def test_ternary_render(self):
        text = render_figure1(include_ternary=True)
        assert "ternary extension" in text


class TestFigure7:
    def test_punchline_states(self):
        _, _, _, left_final, right_final = build_figure7()
        assert left_final == (ZERO, 1)
        assert right_final == (ZERO, 0)

    def test_render_mentions_both_paths(self):
        text = render_figure7()
        assert "tainted" in text
        assert "untainted reset" in text


class TestTable3Summary:
    def rows(self):
        return [
            Table3Row("clean", 100, 100, 150, False, 0, 2),
            Table3Row("dirty", 100, 120, 160, True, 1, 2),
        ]

    def test_overheads(self):
        clean, dirty = self.rows()
        assert clean.with_overhead == 0.0
        assert clean.without_overhead == 50.0
        assert dirty.with_overhead == pytest.approx(20.0)

    def test_summary_math(self):
        summary = summarize(self.rows())
        assert summary["with_avg"] == pytest.approx(10.0)
        assert summary["without_avg"] == pytest.approx(55.0)
        assert summary["reduction_factor"] == pytest.approx(5.5)


class TestEnergyModel:
    def test_idle_cheaper_than_active(self):
        active = cycles_energy(100, 0)
        idle = cycles_energy(0, 100)
        assert idle < active

    def test_zero(self):
        assert cycles_energy(0, 0) == 0.0

    def test_energy_overhead_below_cycle_overhead_when_idle(self):
        row = Table3Row("x", 1000, 2000, 2000, True, 0, 0)
        energy = energy_rows([row])[0]
        # the extra 1000 cycles are mostly idle fill
        assert energy.with_overhead < 100.0

    def test_summary(self):
        rows = [
            EnergyRow("a", 100.0, 110.0, 150.0),
            EnergyRow("b", 100.0, 100.0, 120.0),
        ]
        summary = summarize_energy(rows)
        assert summary["with_avg"] == pytest.approx(5.0)
        assert summary["without_avg"] == pytest.approx(35.0)


class TestTable4:
    def test_survey_size(self):
        assert len(TABLE4) == 9

    def test_render(self):
        text = render_table4()
        assert "TI MSP430" in text
        assert "LP430" in text
