"""Architectural simulator tests: semantics, cycles, taint behaviour."""

import pytest

from repro import memmap
from repro.isa.assembler import assemble
from repro.isa.spec import FLAG_C, FLAG_N, FLAG_V, FLAG_Z, PC, SP, SR
from repro.isasim.executor import (
    Executor,
    ExecutorError,
    UnknownPCError,
    run_concrete,
)
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord


def make_executor(source, **kwargs):
    return Executor(assemble(source), **kwargs)


def run_steps(executor, count):
    results = []
    for _ in range(count):
        results.append(executor.step())
    return results


def reg(executor, index):
    return executor.state.read(index)


class TestBasicSemantics:
    def test_mov_immediate(self):
        executor = make_executor("mov #42, r4\nhalt")
        executor.step()
        assert reg(executor, 4).value == 42
        assert reg(executor, PC).value == 2

    def test_arithmetic_chain(self):
        executor = make_executor(
            """
                mov #10, r4
                mov #3, r5
                add r4, r5
                sub #1, r5
                halt
            """
        )
        run_steps(executor, 4)
        assert reg(executor, 5).value == 12

    def test_flags_zero_carry(self):
        executor = make_executor(
            """
                mov #0xFFFF, r4
                add #1, r4
                halt
            """
        )
        run_steps(executor, 2)
        assert reg(executor, 4).value == 0
        assert executor.state.flag(FLAG_Z) == (ONE, 0)
        assert executor.state.flag(FLAG_C) == (ONE, 0)

    def test_cmp_does_not_write(self):
        executor = make_executor(
            """
                mov #5, r4
                cmp #5, r4
                halt
            """
        )
        run_steps(executor, 2)
        assert reg(executor, 4).value == 5
        assert executor.state.flag(FLAG_Z) == (ONE, 0)
        assert executor.state.flag(FLAG_C) == (ONE, 0)  # no borrow

    def test_logic_ops(self):
        executor = make_executor(
            """
                mov #0x0F0F, r4
                mov #0x00FF, r5
                and r4, r5
                mov #0x0F0F, r6
                bis #0x1000, r6
                bic #0x000F, r6
                xor #0xFFFF, r6
                halt
            """
        )
        run_steps(executor, 7)
        assert reg(executor, 5).value == 0x000F
        assert reg(executor, 6).value == (0x1F00 ^ 0xFFFF)

    def test_memory_roundtrip(self):
        executor = make_executor(
            """
                mov #0x200, r4
                mov #77, 0(r4)
                mov @r4, r5
                halt
            """
        )
        run_steps(executor, 3)
        assert reg(executor, 5).value == 77

    def test_autoincrement_walks_table(self):
        executor = make_executor(
            """
                mov #0x400, r4
                mov @r4+, r5
                mov @r4+, r6
                halt
            .data 0x400
                .word 11, 22
            """
        )
        run_steps(executor, 3)
        assert reg(executor, 5).value == 11
        assert reg(executor, 6).value == 22
        assert reg(executor, 4).value == 0x402

    def test_push_pop(self):
        executor = make_executor(
            """
                mov #0x0FFE, sp
                mov #99, r4
                push r4
                clr r4
                pop r4
                halt
            """
        )
        run_steps(executor, 5)
        assert reg(executor, 4).value == 99
        assert reg(executor, SP).value == 0x0FFE

    def test_call_ret(self):
        executor = make_executor(
            """
                mov #0x0FFE, sp
                call #func
                mov #1, r5
                halt
            func:
                mov #7, r4
                ret
            """
        )
        results = run_steps(executor, 5)
        assert reg(executor, 4).value == 7
        assert reg(executor, 5).value == 1
        assert results[-1].kind == "ok"

    def test_shifts(self):
        executor = make_executor(
            """
                mov #0x8003, r4
                rra r4
                mov #0x8003, r5
                rrc r5
                mov #0x1234, r6
                swpb r6
                halt
            """
        )
        run_steps(executor, 6)
        assert reg(executor, 4).value == 0xC001
        # rrc: carry was set by rra (bit0 of 0x8003 == 1)
        assert reg(executor, 5).value == 0xC001
        assert reg(executor, 6).value == 0x3412

    def test_rla_pseudo_doubles(self):
        executor = make_executor(
            """
                mov #3, r4
                rla r4
                halt
            """
        )
        run_steps(executor, 2)
        assert reg(executor, 4).value == 6


class TestControlFlow:
    def test_loop_counts(self):
        executor = make_executor(
            """
                mov #5, r10
                clr r4
            loop:
                inc r4
                dec r10
                jnz loop
                halt
            """
        )
        while not executor.halted:
            executor.step()
        assert reg(executor, 4).value == 5

    def test_conditional_signed(self):
        executor = make_executor(
            """
                mov #5, r4
                cmp #10, r4       ; r4 - 10 < 0
                jge over
                mov #1, r5
            over:
                halt
            """
        )
        while not executor.halted:
            executor.step()
        assert reg(executor, 5).value == 1

    def test_br_pseudo(self):
        executor = make_executor(
            """
                br #target
                mov #1, r5
            target:
                halt
            """
        )
        while not executor.halted:
            executor.step()
        assert reg(executor, 5).tmask == 0  # never executed; still X?
        assert reg(executor, PC).value == executor.program.labels["target"]

    def test_halt_reports(self):
        executor = make_executor("halt")
        result = executor.step()
        assert result.kind == "halt"
        assert executor.halted

    def test_unknown_branch_splits(self):
        executor = make_executor(
            """
                mov &P3IN, r4     ; unknown but untainted input
                tst r4
                jz somewhere
                halt
            somewhere:
                halt
            """
        )
        run_steps(executor, 2)
        result = executor.step()
        assert result.kind == "split"
        assert set(result.targets) == {
            executor.program.labels["somewhere"],
            executor.program.labels["somewhere"] - 1,
        }
        assert result.branch_taint == 0  # P3IN is untainted

    def test_tainted_branch_split_taints_pc(self):
        executor = make_executor(
            """
                mov &P1IN, r4     ; tainted input
                tst r4
                jz somewhere
                halt
            somewhere:
                halt
            """
        )
        run_steps(executor, 2)
        result = executor.step()
        assert result.kind == "split"
        assert result.branch_taint == 0xFFFF

    def test_unknown_pc_raises(self):
        executor = make_executor("halt")
        executor.state.write(PC, TWord.unknown(16))
        with pytest.raises(UnknownPCError):
            executor.step()

    def test_computed_jump_enumerates(self):
        executor = make_executor(
            """
                mov &P3IN, r4
                and #0x0001, r4
                add #target, r4
                mov r4, pc
                nop               ; aligns `target` to an even address so
            target:               ; base+X stays a 2-value known-bits set
                halt
                halt
            """
        )
        run_steps(executor, 3)
        result = executor.step()
        assert result.kind == "split"
        base = executor.program.labels["target"]
        assert base % 2 == 0
        assert set(result.targets) == {base, base + 1}

    def test_wildly_unknown_computed_jump_rejected(self):
        executor = make_executor(
            """
                mov &P3IN, r4
                mov r4, pc
            """
        )
        executor.step()
        with pytest.raises(ExecutorError, match="computed jump"):
            executor.step()


class TestCycleCounts:
    def test_reg_reg_is_two_cycles(self):
        executor = make_executor("mov r4, r5\nhalt")
        result = executor.step()
        assert result.cycles == 2

    def test_immediate_is_three_cycles(self):
        executor = make_executor("mov #1, r5\nhalt")
        assert executor.step().cycles == 3

    def test_jump_is_two_cycles(self):
        executor = make_executor("jmp next\nnext: halt")
        assert executor.step().cycles == 2

    def test_indexed_store_immediate(self):
        # mov #x, 2(r4): F + SE + DE + E = 4 (no DL for mov)
        executor = make_executor("mov #9, 2(r4)\nhalt")
        assert executor.step().cycles == 4

    def test_rmw_indexed(self):
        # add #x, 2(r4): F + SE + DE + DL + E = 5
        executor = make_executor("add #9, 2(r4)\nhalt")
        assert executor.step().cycles == 5

    def test_cpi_band(self):
        """Overall CPI sits in the multi-cycle MSP430-like band (2-6)."""
        executor = make_executor(
            """
                mov #0x0FFE, sp
                mov #10, r10
            loop:
                push r10
                pop r11
                dec r10
                jnz loop
                halt
            """
        )
        steps = 0
        while not executor.halted:
            executor.step()
            steps += 1
        cpi = executor.cycle / steps
        assert 2.0 <= cpi <= 6.0


class TestTaintFlow:
    def test_untrusted_input_taints_register(self):
        executor = make_executor("mov &P1IN, r4\nhalt")
        executor.step()
        assert reg(executor, 4).tmask == 0xFFFF
        assert reg(executor, 4).xmask == 0xFFFF

    def test_trusted_input_unknown_untainted(self):
        executor = make_executor("mov &P3IN, r4\nhalt")
        executor.step()
        assert reg(executor, 4).tmask == 0
        assert reg(executor, 4).xmask == 0xFFFF

    def test_masking_clears_taint(self):
        """Figure 9's repair at the ISA level."""
        executor = make_executor(
            """
                mov &P1IN, r4
                and #0x03FF, r4
                bis #0x0400, r4
                halt
            """
        )
        run_steps(executor, 3)
        word = reg(executor, 4)
        assert word.tmask == 0x03FF
        assert word.bit(10) == (ONE, 0)

    def test_unmasked_store_taints_whole_memory(self):
        """Figure 9 left-hand listing."""
        executor = make_executor(
            """
                mov &P1IN, r4
                mov #500, 0(r4)
                halt
            """
        )
        run_steps(executor, 2)
        assert executor.space.ram.region_tainted(0x100, 0x1000)
        assert executor.space.watchdog.corrupted

    def test_masked_store_confined(self):
        """Figure 9 right-hand listing."""
        executor = make_executor(
            """
                mov &P1IN, r4
                and #0x03FF, r4
                bis #0x0400, r4
                mov #500, 0(r4)
                halt
            """
        )
        run_steps(executor, 4)
        ram = executor.space.ram
        assert ram.region_tainted(0x400, 0x800)
        assert not ram.region_tainted(0x100, 0x400)
        assert not ram.region_tainted(0x800, 0x1000)
        assert not executor.space.watchdog.corrupted

    def test_tainted_pc_taints_everything_it_writes(self):
        executor = make_executor(
            """
                mov &P1IN, r4
                tst r4
                jz skip
            skip:
                mov #1, r5
                halt
            """
        )
        run_steps(executor, 2)
        split = executor.step()
        assert split.kind == "split"
        executor.force_pc(split.targets[0], split.branch_taint)
        executor.step()  # mov #1, r5 under tainted control flow
        word = reg(executor, 5)
        assert word.value == 1
        assert word.tmask == 0xFFFF

    def test_pc_taint_is_sticky(self):
        executor = make_executor(
            """
            start:
                mov #1, r5
                jmp start
            """
        )
        executor.force_pc(0, 0xFFFF)
        run_steps(executor, 3)
        assert reg(executor, PC).tmask == 0xFFFF


class TestWatchdogIntegration:
    def test_watchdog_reset_restores_untainted_control(self):
        """Figure 8's repair: the untainted watchdog reset de-taints the PC."""
        executor = make_executor(
            """
                mov #0x5a03, &WDTCTL   ; arm watchdog, 64-cycle interval
            spin:
                jmp spin
            """
        )
        executor.force_pc(0, 0)
        executor.step()  # arm
        # taint the PC as if tainted code had been scheduled
        executor.state.write(PC, reg(executor, PC).taint_all())
        for _ in range(40):
            result = executor.step()
            if result.kind == "reset":
                break
        else:
            pytest.fail("watchdog never fired")
        assert reg(executor, PC) == TWord.const(0)
        assert reg(executor, PC).tmask == 0

    def test_corrupted_watchdog_reset_keeps_taint(self):
        executor = make_executor(
            """
                mov &P1IN, r4
                mov r4, &WDTCTL        ; tainted write: watchdog corrupted
            spin:
                jmp spin
            """
        )
        run_steps(executor, 2)
        assert executor.space.watchdog.corrupted
        executor.pending_por = (ONE, 1)  # a tainted reset
        executor.step()
        assert reg(executor, PC).value == 0
        assert reg(executor, PC).tmask == 0xFFFF


class TestConcreteRuns:
    def test_run_concrete_counts_cycles(self):
        run = run_concrete(
            assemble(
                """
                    mov #10, r10
                loop:
                    dec r10
                    jnz loop
                    halt
                """
            )
        )
        assert run.halted
        # mov(3) + 10 * (dec(3) + jnz(2)) = 53 + final halt(2)
        assert run.cycles == 3 + 10 * 5 + 2

    def test_run_concrete_reads_ports(self):
        values = iter([7, 9])

        def inputs(port):
            return next(values)

        run = run_concrete(
            assemble(
                """
                    mov &P3IN, r4
                    mov &P3IN, r5
                    add r4, r5
                    mov r5, &P4OUT
                    halt
                """
            ),
            inputs=inputs,
        )
        assert run.halted
        port, data = run.port_writes[-1]
        assert port == "P4OUT"
        assert data.value == 16

    def test_run_concrete_follows_watchdog(self):
        run = run_concrete(
            assemble(
                """
                    mov #0x5a03, &WDTCTL
                spin:
                    jmp spin
                """
            ),
            max_cycles=200,
        )
        assert run.resets >= 1
