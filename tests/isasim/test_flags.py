"""Exhaustive-ish flag semantics tests against a reference oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.spec import FLAG_C, FLAG_N, FLAG_V, FLAG_Z
from repro.isasim.executor import Executor
from repro.logic.ternary import ONE, ZERO

WORD = st.integers(0, 0xFFFF)


def run_flags(op, a, b):
    """Execute `op #a, rX` with rX preloaded to b; return flag dict."""
    executor = Executor(
        assemble(
            f"""
                mov #{b}, r4
                {op} #{a}, r4
                halt
            """,
            name="flags",
        )
    )
    executor.step()
    executor.step()
    return {
        "C": executor.state.flag(FLAG_C),
        "Z": executor.state.flag(FLAG_Z),
        "N": executor.state.flag(FLAG_N),
        "V": executor.state.flag(FLAG_V),
        "result": executor.state.read(4),
    }


def signed(value):
    return value - 0x10000 if value & 0x8000 else value


class TestAddFlags:
    @given(WORD, WORD)
    @settings(max_examples=40, deadline=None)
    def test_add(self, a, b):
        flags = run_flags("add", a, b)
        total = a + b
        assert flags["result"].value == total & 0xFFFF
        assert flags["C"] == ((ONE if total > 0xFFFF else ZERO), 0)
        assert flags["Z"] == (
            (ONE if total & 0xFFFF == 0 else ZERO),
            0,
        )
        assert flags["N"][0] == (
            ONE if total & 0x8000 else ZERO
        )
        expect_v = signed(a) + signed(b) not in range(-0x8000, 0x8000)
        assert flags["V"][0] == (ONE if expect_v else ZERO)


class TestSubFlags:
    @given(WORD, WORD)
    @settings(max_examples=40, deadline=None)
    def test_sub(self, a, b):
        # sub #a, r4 computes r4(b) - a
        flags = run_flags("sub", a, b)
        assert flags["result"].value == (b - a) & 0xFFFF
        # MSP430: C = no borrow
        assert flags["C"][0] == (ONE if b >= a else ZERO)
        assert flags["Z"][0] == (ONE if a == b else ZERO)
        expect_v = signed(b) - signed(a) not in range(-0x8000, 0x8000)
        assert flags["V"][0] == (ONE if expect_v else ZERO)

    @given(WORD, WORD)
    @settings(max_examples=30, deadline=None)
    def test_cmp_leaves_dst(self, a, b):
        flags = run_flags("cmp", a, b)
        assert flags["result"].value == b  # cmp does not write
        assert flags["C"][0] == (ONE if b >= a else ZERO)


class TestLogicFlags:
    @given(WORD, WORD)
    @settings(max_examples=40, deadline=None)
    def test_and(self, a, b):
        flags = run_flags("and", a, b)
        result = a & b
        assert flags["result"].value == result
        assert flags["Z"][0] == (ONE if result == 0 else ZERO)
        # MSP430: C = not Z for logic ops
        assert flags["C"][0] == (ZERO if result == 0 else ONE)
        assert flags["V"] == (ZERO, 0)

    @given(WORD, WORD)
    @settings(max_examples=40, deadline=None)
    def test_xor(self, a, b):
        flags = run_flags("xor", a, b)
        result = a ^ b
        assert flags["result"].value == result
        assert flags["C"][0] == (ZERO if result == 0 else ONE)
        # MSP430 XOR: V set when both operands negative
        expect_v = bool(a & 0x8000) and bool(b & 0x8000)
        assert flags["V"][0] == (ONE if expect_v else ZERO)

    @given(WORD, WORD)
    @settings(max_examples=20, deadline=None)
    def test_bis_bic_leave_flags(self, a, b):
        before = run_flags("cmp", 1, b)  # set some flags first
        for op in ("bis", "bic"):
            executor = Executor(
                assemble(
                    f"""
                        mov #{b}, r4
                        cmp #1, r4
                        {op} #{a}, r4
                        halt
                    """,
                    name="f",
                )
            )
            for _ in range(3):
                executor.step()
            assert executor.state.flag(FLAG_C) == before["C"]
            assert executor.state.flag(FLAG_Z) == before["Z"]


class TestAddcChain:
    def test_multiword_addition(self):
        """32-bit add via add/addc -- the carry chain works end to end."""
        executor = Executor(
            assemble(
                """
                    mov #0xFFFF, r4    ; low(a)
                    mov #0x0001, r5    ; high(a)
                    mov #0x0001, r6    ; low(b)
                    mov #0x0002, r7    ; high(b)
                    add r6, r4         ; low sum, sets carry
                    addc r7, r5        ; high sum + carry
                    halt
                """,
                name="add32",
            )
        )
        while not executor.halted:
            executor.step()
        assert executor.state.read(4).value == 0x0000
        assert executor.state.read(5).value == 0x0004
