"""Encoder/decoder tests, including an exhaustive round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import spec
from repro.isa.encode import (
    DecodedInstruction,
    EncodeError,
    Operand,
    decode,
    encode,
)
from repro.isa.spec import (
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    JUMP_MNEMONICS,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_INDIRECT_INC,
    MODE_REGISTER,
    PC,
)


def roundtrip(instruction):
    words = encode(instruction)
    decoded = decode(words + [0, 0], instruction.address)
    assert decoded.length == len(words)
    return decoded


class TestFormatI:
    def test_mov_reg_reg(self):
        instruction = DecodedInstruction(
            "mov", "two", Operand.register(4), Operand.register(5)
        )
        words = encode(instruction)
        assert words == [0x4405]
        decoded = roundtrip(instruction)
        assert decoded.mnemonic == "mov"
        assert decoded.src == Operand.register(4)
        assert decoded.dst == Operand.register(5)

    def test_immediate_encoding(self):
        instruction = DecodedInstruction(
            "add", "two", Operand.immediate(100), Operand.register(10)
        )
        words = encode(instruction)
        assert len(words) == 2
        assert words[1] == 100
        decoded = roundtrip(instruction)
        assert decoded.src.is_immediate
        assert decoded.src.ext == 100

    def test_absolute_destination(self):
        instruction = DecodedInstruction(
            "mov",
            "two",
            Operand.immediate(0x5A03),
            Operand.absolute(0x0080),
        )
        words = encode(instruction)
        assert len(words) == 3
        decoded = roundtrip(instruction)
        assert decoded.dst.is_absolute
        assert decoded.dst.ext == 0x0080

    def test_indexed_both_sides(self):
        instruction = DecodedInstruction(
            "mov",
            "two",
            Operand.indexed(2, 15),
            Operand.indexed(4, 14),
        )
        decoded = roundtrip(instruction)
        assert decoded.src.ext == 2
        assert decoded.dst.ext == 4
        assert decoded.length == 3

    def test_bad_destination_mode(self):
        instruction = DecodedInstruction(
            "mov", "two", Operand.register(4), Operand.indirect(5)
        )
        with pytest.raises(EncodeError):
            encode(instruction)

    def test_store_detection(self):
        store = DecodedInstruction(
            "mov", "two", Operand.register(4), Operand.indexed(0, 14)
        )
        assert store.is_store
        nostore = DecodedInstruction(
            "cmp", "two", Operand.register(4), Operand.indexed(0, 14)
        )
        assert not nostore.is_store

    def test_writes_pc(self):
        branch = DecodedInstruction(
            "mov", "two", Operand.immediate(0x10), Operand.register(PC)
        )
        assert branch.writes_pc
        plain = DecodedInstruction(
            "mov", "two", Operand.immediate(0x10), Operand.register(5)
        )
        assert not plain.writes_pc


class TestFormatII:
    def test_push(self):
        instruction = DecodedInstruction("push", "one", Operand.register(10))
        decoded = roundtrip(instruction)
        assert decoded.mnemonic == "push"
        assert decoded.src == Operand.register(10)
        assert decoded.is_store

    def test_call_immediate(self):
        instruction = DecodedInstruction(
            "call", "one", Operand.immediate(0x123)
        )
        decoded = roundtrip(instruction)
        assert decoded.src.ext == 0x123
        assert decoded.writes_pc
        assert decoded.is_store

    def test_reserved_opcode_rejected(self):
        # format-II opcode 3 (SXT) is reserved in LP430
        word = (0b000100 << 10) | (3 << 7)
        with pytest.raises(EncodeError, match="reserved"):
            decode([word, 0, 0])


class TestJumps:
    def test_jmp_encoding(self):
        instruction = DecodedInstruction(
            "jmp", "jump", offset=-1, address=0x10
        )
        words = encode(instruction)
        decoded = decode(words + [0], 0x10)
        assert decoded.offset == -1
        assert decoded.is_self_loop
        assert decoded.jump_target == 0x10

    def test_conditional_targets(self):
        instruction = DecodedInstruction(
            "jnz", "jump", offset=5, address=0x100
        )
        decoded = roundtrip(instruction)
        assert decoded.jump_target == 0x106
        assert decoded.fallthrough == 0x101
        assert decoded.is_conditional_jump

    def test_offset_range_checked(self):
        with pytest.raises(EncodeError):
            encode(DecodedInstruction("jmp", "jump", offset=512))
        with pytest.raises(EncodeError):
            encode(DecodedInstruction("jmp", "jump", offset=-513))

    def test_all_conditions_roundtrip(self):
        for mnemonic in JUMP_MNEMONICS:
            decoded = roundtrip(
                DecodedInstruction(mnemonic, "jump", offset=3)
            )
            assert decoded.mnemonic == mnemonic


class TestDecodeErrors:
    def test_illegal_opcode(self):
        with pytest.raises(EncodeError, match="illegal opcode"):
            decode([0x0000, 0, 0])


def operand_strategy(dst=False):
    modes = [MODE_REGISTER, MODE_INDEXED] if dst else [
        MODE_REGISTER,
        MODE_INDEXED,
        MODE_INDIRECT,
        MODE_INDIRECT_INC,
    ]
    return st.builds(
        lambda mode, reg, ext: Operand(
            mode,
            reg,
            ext if (mode == MODE_INDEXED or (mode == MODE_INDIRECT_INC and reg == PC)) else None,
        ),
        st.sampled_from(modes),
        st.integers(0, 15),
        st.integers(0, 0xFFFF),
    )


class TestRoundTripProperties:
    @given(
        st.sampled_from(sorted(FORMAT_I_OPCODES)),
        operand_strategy(),
        operand_strategy(dst=True),
    )
    @settings(max_examples=300)
    def test_format_i_roundtrip(self, mnemonic, src, dst):
        instruction = DecodedInstruction(mnemonic, "two", src, dst)
        decoded = roundtrip(instruction)
        assert decoded.mnemonic == mnemonic
        assert decoded.src == src
        assert decoded.dst == dst

    @given(st.sampled_from(sorted(FORMAT_II_OPCODES)), operand_strategy())
    @settings(max_examples=200)
    def test_format_ii_roundtrip(self, mnemonic, operand):
        instruction = DecodedInstruction(mnemonic, "one", operand)
        decoded = roundtrip(instruction)
        assert decoded.mnemonic == mnemonic
        assert decoded.src == operand

    @given(
        st.sampled_from(JUMP_MNEMONICS),
        st.integers(spec.JUMP_OFFSET_MIN, spec.JUMP_OFFSET_MAX),
    )
    @settings(max_examples=200)
    def test_jump_roundtrip(self, mnemonic, offset):
        decoded = roundtrip(
            DecodedInstruction(mnemonic, "jump", offset=offset)
        )
        assert decoded.mnemonic == mnemonic
        assert decoded.offset == offset

    def test_render_smoke(self):
        instruction = DecodedInstruction(
            "mov", "two", Operand.immediate(5), Operand.indexed(-2, 4)
        )
        assert instruction.render() == "mov #5, -2(r4)"
