"""Assembler + disassembler tests."""

import pytest

from repro import memmap
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disasm import disassemble_program
from repro.isa.encode import decode


def decode_at(program, address):
    return decode(program.slice_from(address), address)


class TestBasics:
    def test_figure8_left_listing(self):
        """The paper's Figure 8 unprotected loop assembles verbatim."""
        program = assemble(
            """
            .task main untrusted
                nop
                mov #100, r10
            loop:
                nop
                nop
                dec r10
                jnz loop
                jmp 0
            """
        )
        image = program.words()
        first = decode_at(program, 0)
        assert first.render() == "mov r3, r3"  # nop
        second = decode_at(program, 1)
        assert second.mnemonic == "mov"
        assert second.src.ext == 100
        dec = decode_at(program, 5)
        assert dec.mnemonic == "sub" and dec.src.ext == 1
        jnz = decode_at(program, 7)
        assert jnz.mnemonic == "jnz" and jnz.jump_target == 3
        jmp = decode_at(program, 8)
        assert jmp.mnemonic == "jmp" and jmp.jump_target == 0

    def test_labels_and_forward_references(self):
        program = assemble(
            """
                jmp end
                nop
            end:
                halt
            """
        )
        jump = decode_at(program, 0)
        assert jump.jump_target == program.labels["end"] == 2
        halt = decode_at(program, 2)
        assert halt.is_self_loop

    def test_peripheral_symbols(self):
        program = assemble("mov #0x5a03, &WDTCTL")
        instruction = decode_at(program, 0)
        assert instruction.dst.is_absolute
        assert instruction.dst.ext == memmap.WDTCTL

    def test_equ_and_expressions(self):
        program = assemble(
            """
            .equ BASE 0x400
                mov #BASE+4, r5
                mov #BASE-1, r6
                mov #-1, r7
            """
        )
        assert decode_at(program, 0).src.ext == 0x404
        assert decode_at(program, 2).src.ext == 0x3FF
        assert decode_at(program, 4).src.ext == 0xFFFF

    def test_dollar_is_current_address(self):
        program = assemble(
            """
                nop
                jmp $
            """
        )
        jump = decode_at(program, 1)
        assert jump.is_self_loop

    def test_org(self):
        program = assemble(
            """
            .org 0x10
                nop
            """
        )
        assert 0x10 in program.code
        assert 0 not in program.code

    def test_addressing_modes(self):
        program = assemble(
            """
                mov @r15, r14
                mov @r15+, r14
                mov 2(r15), r14
                mov r14, 4(r13)
                mov &0x200, r5
            """
        )
        modes = [decode_at(program, a) for a in (0, 1, 2, 4, 6)]
        assert modes[0].src.render() == "@r15"
        assert modes[1].src.render() == "@r15+"
        assert modes[2].src.ext == 2
        assert modes[3].dst.ext == 4
        assert modes[4].src.is_absolute


class TestPseudoInstructions:
    def test_ret_pop_push(self):
        program = assemble(
            """
                push r10
                pop r10
                ret
            """
        )
        push = decode_at(program, 0)
        assert push.mnemonic == "push"
        pop = decode_at(program, 1)
        assert pop.mnemonic == "mov" and pop.src.render() == "@r1+"
        ret = decode_at(program, 2)
        assert ret.mnemonic == "mov" and ret.dst.reg == 0

    def test_br(self):
        program = assemble("br #0x40")
        branch = decode_at(program, 0)
        assert branch.writes_pc
        assert branch.src.ext == 0x40

    def test_arith_pseudos(self):
        program = assemble(
            """
                clr r4
                inc r4
                dec r4
                tst r4
                inv r4
                rla r4
                adc r4
            """
        )
        mnemonics = []
        address = 0
        while address < program.code_size:
            instruction = decode_at(program, address)
            mnemonics.append(instruction.mnemonic)
            address += instruction.length
        assert mnemonics == ["mov", "add", "sub", "cmp", "xor", "add", "addc"]


class TestDataAndTasks:
    def test_data_section(self):
        program = assemble(
            """
                nop
            .data 0x400
            table:
                .word 1, 2, 3
                .space 2
            value:
                .word 0xBEEF
            """
        )
        assert program.labels["table"] == 0x400
        assert program.labels["value"] == 0x405
        assert program.data[0x400] == 1
        assert program.data[0x402] == 3
        assert program.data[0x403] == 0
        assert program.data[0x405] == 0xBEEF

    def test_task_partitions(self):
        program = assemble(
            """
            .task sys trusted
                nop
                nop
            .task app untrusted
                nop
                halt
            """
        )
        assert len(program.tasks) == 2
        sys_task = program.task_named("sys")
        app_task = program.task_named("app")
        assert sys_task.trusted and not app_task.trusted
        assert sys_task.start == 0 and sys_task.end == 2
        assert app_task.start == 2 and app_task.end == 4
        assert program.task_of(1).name == "sys"
        assert program.task_of(3).name == "app"
        assert program.untrusted_tasks() == [app_task]

    def test_line_debug_info(self):
        program = assemble(
            """
            .task main trusted
                mov #1, r4
                mov #2, r5
            """
        )
        line = program.line_at(2)
        assert line is not None
        assert "mov" in line.text and "#2" in line.text
        assert line.task == "main"

    def test_text_after_data(self):
        program = assemble(
            """
                nop
            .data 0x400
                .word 5
            .text
                nop
            """
        )
        assert 1 in program.code


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r4")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblyError, match="takes 2"):
            assemble("mov r4")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError, match="undefined symbol"):
            assemble("mov #nothere, r4")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x:\nx:\n nop")

    def test_jump_out_of_range(self):
        source = "jmp far\n" + ".org 0x600\nfar: nop"
        with pytest.raises(AssemblyError, match="out of range"):
            assemble(source)

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblyError, match="data section"):
            assemble(".data 0x400\n nop")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as info:
            assemble("nop\nbogus r1\n")
        assert info.value.line_no == 2


class TestRoundTripThroughDisassembler:
    def test_listing_contains_everything(self):
        program = assemble(
            """
            .task sys trusted
            start:
                mov #0x5a03, &WDTCTL
                mov @r15+, r14
                jnz start
                halt
            """,
            name="demo",
        )
        listing = disassemble_program(program)
        assert "start:" in listing
        assert "mov" in listing
        assert "jnz 0x0000" in listing
        assert "; sys (trusted)" in listing

    def test_reassembly_fixpoint(self):
        """Disassembling and hand-reassembling preserves the image."""
        source = """
            .task t untrusted
                mov #100, r10
            loop:
                dec r10
                jnz loop
                halt
        """
        program = assemble(source)
        # every word decodes; total size is consistent
        image = program.words()
        address = 0
        count = 0
        while address < len(image):
            instruction = decode(image[address:] + [0, 0], address)
            address += instruction.length
            count += 1
        assert count == 4
