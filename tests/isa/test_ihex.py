"""Intel HEX round-trip and error tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.ihex import IhexError, load_ihex_into_rom, read_ihex, write_ihex
from repro.isa.program import Program
from repro.sim.soc import Rom
from repro.logic.words import TWord


def sample_program():
    return assemble(
        """
        .org 0x10
            mov #0xBEEF, r4
            mov #100, r10
        loop:
            dec r10
            jnz loop
            halt
        """,
        name="sample",
    )


class TestRoundTrip:
    def test_sample_roundtrip(self):
        program = sample_program()
        text = write_ihex(program)
        words = read_ihex(text)
        assert words == program.code

    def test_rom_loading(self):
        program = sample_program()
        rom = Rom()
        load_ihex_into_rom(write_ihex(program), rom)
        for address, word in program.code.items():
            assert rom.read(TWord.const(address)).value == word

    def test_format_shape(self):
        text = write_ihex(sample_program())
        lines = text.strip().splitlines()
        assert all(line.startswith(":") for line in lines)
        assert lines[-1] == ":00000001FF"  # standard EOF record

    def test_sparse_images_split_rows(self):
        program = Program(name="sparse", code={0: 0x1111, 0x100: 0x2222})
        words = read_ihex(write_ihex(program))
        assert words == {0: 0x1111, 0x100: 0x2222}

    @given(
        st.dictionaries(
            st.integers(0, 2000), st.integers(0, 0xFFFF), max_size=64
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, code):
        program = Program(name="fuzz", code=code)
        assert read_ihex(write_ihex(program)) == code


class TestErrors:
    def test_missing_start_code(self):
        with pytest.raises(IhexError, match="start code"):
            read_ihex("00000001FF\n")

    def test_bad_checksum(self):
        with pytest.raises(IhexError, match="checksum"):
            read_ihex(":020000000000FF\n:00000001FF\n")

    def test_missing_eof(self):
        payload = bytes([2, 0, 0, 0, 0x34, 0x12])
        checksum = (-sum(payload)) & 0xFF
        line = ":" + (payload + bytes([checksum])).hex().upper()
        with pytest.raises(IhexError, match="EOF"):
            read_ihex(line + "\n")

    def test_bad_hex(self):
        with pytest.raises(IhexError, match="hex"):
            read_ihex(":zz000001FF\n")

    def test_unsupported_record_type(self):
        # record type 4 (extended linear address) is out of subset
        payload = bytes([2, 0, 0, 4, 0, 0])
        checksum = (-sum(payload)) & 0xFF
        line = ":" + (payload + bytes([checksum])).hex().upper()
        with pytest.raises(IhexError, match="unsupported"):
            read_ihex(line + "\n:00000001FF\n")

    def test_length_mismatch(self):
        payload = bytes([3, 0, 0, 0, 0xAB])  # claims 3 bytes, has 1
        checksum = (-sum(payload)) & 0xFF
        line = ":" + (payload + bytes([checksum])).hex().upper()
        with pytest.raises(IhexError, match="length"):
            read_ihex(line + "\n:00000001FF\n")
