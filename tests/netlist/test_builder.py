"""Tests for the circuit-builder DSL, checked against a reference evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.glift import GATE_FUNCTIONS
from repro.netlist.builder import CircuitBuilder, Sig
from repro.netlist.netlist import NetlistError


def evaluate(netlist, input_values):
    """Reference boolean evaluation (combinational only)."""
    from repro.netlist.levelize import levelize

    values = {}
    for port in netlist.inputs:
        word = input_values[port.name]
        for index, net in enumerate(port.nets):
            values[net] = word >> index & 1
    for level in levelize(netlist):
        for gate in level:
            if gate.cell_type == "TIE0":
                values[gate.output] = 0
            elif gate.cell_type == "TIE1":
                values[gate.output] = 1
            else:
                func = GATE_FUNCTIONS[gate.cell_type]
                values[gate.output] = func(
                    *(values[n] for n in gate.inputs)
                )
    outputs = {}
    for port in netlist.outputs:
        word = 0
        for index, net in enumerate(port.nets):
            word |= values[net] << index
        outputs[port.name] = word
    return outputs


def build_and_eval(build, inputs):
    builder = CircuitBuilder("t")
    build(builder)
    netlist = builder.build()
    return evaluate(netlist, inputs)


WORD4 = st.integers(0, 15)


class TestWordOps:
    @given(WORD4, WORD4)
    @settings(max_examples=60)
    def test_bitwise(self, a, b):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            builder.output("and", builder.and_(sig_a, sig_b))
            builder.output("or", builder.or_(sig_a, sig_b))
            builder.output("xor", builder.xor_(sig_a, sig_b))
            builder.output("not", builder.not_(sig_a))

        out = build_and_eval(build, {"a": a, "b": b})
        assert out["and"] == a & b
        assert out["or"] == a | b
        assert out["xor"] == a ^ b
        assert out["not"] == ~a & 0xF

    @given(WORD4, WORD4, st.integers(0, 1))
    @settings(max_examples=60)
    def test_add_and_addsub(self, a, b, cin):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            carry_in = builder.input("cin", 1)
            total, cout = builder.add(sig_a, sig_b, cin=carry_in[0])
            builder.output("sum", total)
            builder.output("cout", Sig([cout]))

        out = build_and_eval(build, {"a": a, "b": b, "cin": cin})
        assert out["sum"] == (a + b + cin) & 0xF
        assert out["cout"] == (a + b + cin) >> 4

    @given(WORD4, WORD4, st.integers(0, 1))
    @settings(max_examples=60)
    def test_addsub(self, a, b, subtract):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            sub = builder.input("sub", 1)
            total, cout, _ = builder.addsub(sig_a, sig_b, sub[0])
            builder.output("sum", total)
            builder.output("cout", Sig([cout]))

        out = build_and_eval(build, {"a": a, "b": b, "sub": subtract})
        if subtract:
            assert out["sum"] == (a - b) & 0xF
            assert out["cout"] == (1 if a >= b else 0)
        else:
            assert out["sum"] == (a + b) & 0xF

    def test_addsub_overflow(self):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            sub = builder.input("sub", 1)
            _, _, ovf = builder.addsub(sig_a, sig_b, sub[0])
            builder.output("ovf", Sig([ovf]))

        # 7 + 1 overflows signed 4-bit
        out = build_and_eval(build, {"a": 7, "b": 1, "sub": 0})
        assert out["ovf"] == 1
        out = build_and_eval(build, {"a": 3, "b": 1, "sub": 0})
        assert out["ovf"] == 0

    @given(WORD4)
    @settings(max_examples=30)
    def test_inc(self, a):
        def build(builder):
            sig = builder.input("a", 4)
            builder.output("out", builder.inc(sig))

        out = build_and_eval(build, {"a": a})
        assert out["out"] == (a + 1) & 0xF

    @given(WORD4, WORD4, st.integers(0, 1))
    @settings(max_examples=40)
    def test_mux(self, a, b, sel):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            select = builder.input("sel", 1)
            builder.output("out", builder.mux(select[0], sig_a, sig_b))

        out = build_and_eval(build, {"a": a, "b": b, "sel": sel})
        assert out["out"] == (b if sel else a)

    @given(st.integers(0, 3), st.lists(WORD4, min_size=4, max_size=4))
    @settings(max_examples=40)
    def test_muxn(self, sel, options):
        def build(builder):
            sigs = [builder.const(v, 4) for v in options]
            select = builder.input("sel", 2)
            builder.output("out", builder.muxn(select, sigs))

        out = build_and_eval(build, {"sel": sel})
        assert out["out"] == options[sel]

    def test_muxn_width_check(self):
        builder = CircuitBuilder()
        select = builder.input("sel", 2)
        with pytest.raises(NetlistError):
            builder.muxn(select, [builder.const(0, 4)] * 3)

    @given(st.integers(0, 3), st.lists(WORD4, min_size=4, max_size=4))
    @settings(max_examples=40)
    def test_onehot_mux(self, sel, options):
        def build(builder):
            select = builder.input("sel", 2)
            hot = builder.decode(select)
            sigs = [builder.const(v, 4) for v in options]
            builder.output("out", builder.onehot_mux(hot, sigs))

        out = build_and_eval(build, {"sel": sel})
        assert out["out"] == options[sel]

    @given(WORD4, WORD4)
    @settings(max_examples=40)
    def test_comparisons(self, a, b):
        def build(builder):
            sig_a = builder.input("a", 4)
            sig_b = builder.input("b", 4)
            builder.output("eq", Sig([builder.eq(sig_a, sig_b)]))
            builder.output("zero", Sig([builder.is_zero(sig_a)]))
            builder.output("eq7", Sig([builder.eq_const(sig_a, 7)]))

        out = build_and_eval(build, {"a": a, "b": b})
        assert out["eq"] == int(a == b)
        assert out["zero"] == int(a == 0)
        assert out["eq7"] == int(a == 7)

    @given(st.integers(0, 15))
    @settings(max_examples=20)
    def test_const(self, value):
        def build(builder):
            builder.output("k", builder.const(value, 4))
            builder.input("dummy", 1)

        out = build_and_eval(build, {"dummy": 0})
        assert out["k"] == value

    def test_wiring_helpers(self):
        def build(builder):
            sig = builder.input("a", 4)
            builder.output("lo", builder.slice_(sig, 0, 2))
            builder.output("cat", builder.cat(sig, sig))
            builder.output("zext", builder.zext(sig, 6))
            builder.output("sext", builder.sext(sig, 6))

        out = build_and_eval(build, {"a": 0b1010})
        assert out["lo"] == 0b10
        assert out["cat"] == 0b10101010
        assert out["zext"] == 0b001010
        assert out["sext"] == 0b111010


class TestRegisters:
    def test_register_requires_drive(self):
        builder = CircuitBuilder()
        builder.reg("r", 4)
        with pytest.raises(NetlistError, match="never driven"):
            builder.build()

    def test_register_double_drive_rejected(self):
        builder = CircuitBuilder()
        register = builder.reg("r", 2)
        data = builder.input("d", 2)
        builder.drive(register, data)
        with pytest.raises(NetlistError, match="driven twice"):
            builder.drive(register, data)

    def test_register_creates_dffs(self):
        builder = CircuitBuilder()
        register = builder.reg("r", 4)
        data = builder.input("d", 4)
        enable = builder.input("en", 1)
        reset = builder.input("rst", 1)
        builder.drive(register, data, en=enable[0], rst=reset[0])
        builder.output("q", register.q)
        netlist = builder.build()
        assert len(netlist.dffs) == 4

    def test_scope_prefixes_names(self):
        builder = CircuitBuilder()
        with builder.scope("alu"):
            register = builder.reg("acc", 1)
        assert register.name == "alu/acc"
