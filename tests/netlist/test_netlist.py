"""Unit tests for the netlist IR and levelisation."""

import pytest

from repro.netlist.cells import CELL_LIBRARY
from repro.netlist.levelize import CombinationalCycleError, levelize
from repro.netlist.netlist import Netlist, NetlistError


def build_half_adder():
    netlist = Netlist(name="halfadd")
    a = netlist.add_net("a")
    b = netlist.add_net("b")
    s = netlist.add_net("s")
    c = netlist.add_net("c")
    netlist.add_input("a", [a])
    netlist.add_input("b", [b])
    netlist.add_gate("XOR2", (a, b), s, "sum")
    netlist.add_gate("AND2", (a, b), c, "carry")
    netlist.add_output("s", [s])
    netlist.add_output("c", [c])
    return netlist


class TestCellLibrary:
    def test_all_cells_present(self):
        for name in ("NAND2", "XOR2", "MUX2", "DFF", "TIE0", "TIE1"):
            assert name in CELL_LIBRARY

    def test_arities(self):
        assert CELL_LIBRARY["NOT"].arity == 1
        assert CELL_LIBRARY["MUX2"].arity == 3
        assert CELL_LIBRARY["AND4"].arity == 4
        assert CELL_LIBRARY["TIE0"].arity == 0

    def test_only_dff_sequential(self):
        sequential = [c for c in CELL_LIBRARY.values() if c.sequential]
        assert [c.name for c in sequential] == ["DFF"]


class TestNetlistConstruction:
    def test_half_adder_validates(self):
        netlist = build_half_adder()
        netlist.validate()
        assert netlist.num_nets == 4
        assert len(netlist.gates) == 2

    def test_unknown_cell_rejected(self):
        netlist = Netlist()
        net = netlist.add_net()
        with pytest.raises(NetlistError):
            netlist.add_gate("FOO2", (net,), net)

    def test_arity_enforced(self):
        netlist = Netlist()
        a = netlist.add_net()
        out = netlist.add_net()
        with pytest.raises(NetlistError):
            netlist.add_gate("AND2", (a,), out)

    def test_sequential_via_add_gate_rejected(self):
        netlist = Netlist()
        a = netlist.add_net()
        out = netlist.add_net()
        with pytest.raises(NetlistError):
            netlist.add_gate("DFF", (a,), out)

    def test_double_driver_detected(self):
        netlist = Netlist()
        a = netlist.add_net("a")
        out = netlist.add_net("out")
        netlist.add_input("a", [a])
        netlist.add_gate("NOT", (a,), out)
        netlist.add_gate("BUF", (a,), out)
        with pytest.raises(NetlistError, match="driven by both"):
            netlist.validate()

    def test_undriven_input_detected(self):
        netlist = Netlist()
        floating = netlist.add_net("floating")
        out = netlist.add_net("out")
        netlist.add_gate("NOT", (floating,), out)
        netlist.add_output("out", [out])
        with pytest.raises(NetlistError, match="undriven"):
            netlist.validate()

    def test_port_lookup(self):
        netlist = build_half_adder()
        assert netlist.input_port("a").width == 1
        assert netlist.output_port("s").nets == (2,)
        with pytest.raises(KeyError):
            netlist.input_port("nope")

    def test_constant_nets(self):
        netlist = Netlist()
        zero = netlist.add_net("zero")
        one = netlist.add_net("one")
        netlist.add_gate("TIE0", (), zero)
        netlist.add_gate("TIE1", (), one)
        assert netlist.constant_nets() == {zero: 0, one: 1}

    def test_state_nets(self):
        netlist = Netlist()
        q = netlist.add_net("q")
        d = netlist.add_net("d")
        netlist.add_input("d", [d])
        netlist.add_dff(q, d)
        assert netlist.state_nets() == [q]


class TestLevelize:
    def test_half_adder_single_level(self):
        levels = levelize(build_half_adder())
        assert len(levels) == 2  # constants level + level 1
        assert levels[0] == []
        assert {g.name for g in levels[1]} == {"sum", "carry"}

    def test_chain_depth(self):
        netlist = Netlist()
        net = netlist.add_net("in")
        netlist.add_input("in", [net])
        for index in range(5):
            out = netlist.add_net(f"s{index}")
            netlist.add_gate("NOT", (net,), out, f"inv{index}")
            net = out
        netlist.add_output("out", [net])
        levels = levelize(netlist)
        assert len(levels) == 6
        for level in levels[1:]:
            assert len(level) == 1

    def test_dff_breaks_cycle(self):
        netlist = Netlist()
        q = netlist.add_net("q")
        d = netlist.add_net("d")
        netlist.add_gate("NOT", (q,), d, "inv")
        netlist.add_dff(q, d, "toggler")
        levels = levelize(netlist)
        assert len(levels) == 2

    def test_combinational_cycle_detected(self):
        netlist = Netlist()
        a = netlist.add_net("a")
        b = netlist.add_net("b")
        netlist.add_gate("NOT", (a,), b, "i0")
        netlist.add_gate("NOT", (b,), a, "i1")
        with pytest.raises(CombinationalCycleError) as info:
            levelize(netlist)
        assert len(info.value.gates) == 2

    def test_constants_in_level_zero(self):
        netlist = Netlist()
        one = netlist.add_net("one")
        out = netlist.add_net("out")
        netlist.add_gate("TIE1", (), one, "t1")
        netlist.add_gate("NOT", (one,), out, "inv")
        levels = levelize(netlist)
        assert [g.name for g in levels[0]] == ["t1"]
        assert [g.name for g in levels[1]] == ["inv"]


class TestStats:
    def test_half_adder_stats(self):
        from repro.netlist.stats import netlist_stats

        stats = netlist_stats(build_half_adder())
        assert stats.num_gates == 2
        assert stats.num_dffs == 0
        assert stats.logic_depth == 1
        assert stats.cells == {"XOR2": 1, "AND2": 1}
        assert stats.area == pytest.approx(2.25 + 1.25)
        assert "halfadd" in stats.format()
