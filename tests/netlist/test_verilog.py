"""Round-trip tests for the structural-Verilog writer/parser."""

import io

import pytest

from repro.netlist.builder import CircuitBuilder, Sig
from repro.netlist.verilog import VerilogParseError, parse_verilog, write_verilog


def canonical(netlist):
    """Structural signature independent of net numbering."""

    def net_name(net):
        return netlist.net_names[net]

    gates = sorted(
        (g.cell_type, net_name(g.output), tuple(net_name(n) for n in g.inputs))
        for g in netlist.gates
    )
    dffs = sorted((net_name(d.q), net_name(d.d)) for d in netlist.dffs)
    ports = (
        [(p.name, "in", p.width) for p in netlist.inputs],
        [(p.name, "out", p.width) for p in netlist.outputs],
    )
    return gates, dffs, ports


def sample_design():
    builder = CircuitBuilder("sample")
    a = builder.input("a", 4)
    b = builder.input("b", 4)
    reset = builder.input("rst", 1)
    total, cout = builder.add(a, b)
    acc = builder.reg("acc", 4)
    builder.drive(acc, total, rst=reset[0])
    builder.output("sum", total)
    builder.output("cout", Sig([cout]))
    builder.output("acc", acc.q)
    return builder.build()


class TestRoundTrip:
    def test_sample_design_roundtrip(self):
        original = sample_design()
        text = io.StringIO()
        write_verilog(original, text)
        parsed = parse_verilog(text.getvalue())
        # Port-bit nets are renamed to port references on write; compare
        # structure modulo that renaming by writing both once more.
        second = io.StringIO()
        write_verilog(parsed, second)
        assert (
            parse_and_signature(text.getvalue())
            == parse_and_signature(second.getvalue())
        )
        assert parsed.name == "sample"
        assert len(parsed.gates) == len(original.gates)
        assert len(parsed.dffs) == len(original.dffs)

    def test_escaped_identifiers(self):
        original = sample_design()
        text = io.StringIO()
        write_verilog(original, text)
        body = text.getvalue()
        assert "\\acc[0] " in body  # register bit names need escaping

    def test_output_contains_cells(self):
        text = io.StringIO()
        write_verilog(sample_design(), text)
        body = text.getvalue()
        assert "module sample (" in body
        assert "XOR2" in body
        assert "DFF" in body
        assert body.strip().endswith("endmodule")


def parse_and_signature(text):
    return canonical(parse_verilog(text))


class TestParserErrors:
    def test_unknown_cell(self):
        text = (
            "module m (\n  input [0:0] a\n);\n"
            "  wire w;\n  BOGUS2 g (w, a[0], a[0]);\nendmodule\n"
        )
        with pytest.raises(VerilogParseError, match="unknown cell"):
            parse_verilog(text)

    def test_missing_endmodule(self):
        text = "module m (\n  input [0:0] a\n);\n"
        with pytest.raises(VerilogParseError, match="endmodule"):
            parse_verilog(text)

    def test_bad_port_direction(self):
        text = "module m (\n  inout [0:0] a\n);\nendmodule\n"
        with pytest.raises(VerilogParseError, match="direction"):
            parse_verilog(text)

    def test_dff_pin_count(self):
        text = (
            "module m (\n  input [0:0] a\n);\n"
            "  wire q;\n  DFF f (q, a[0], a[0]);\nendmodule\n"
        )
        with pytest.raises(VerilogParseError, match="DFF"):
            parse_verilog(text)

    def test_comments_stripped(self):
        text = (
            "// header comment\n"
            "module m ( /* ports */\n  input [1:0] a\n);\n"
            "  wire w; // a wire\n"
            "  AND2 g (w, a[0], a[1]);\n"
            "endmodule\n"
        )
        netlist = parse_verilog(text)
        assert len(netlist.gates) == 1

    def test_stray_character(self):
        with pytest.raises(VerilogParseError, match="unexpected character"):
            parse_verilog("module m (#);")
