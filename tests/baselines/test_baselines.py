"""Tests for the *-logic and always-on baselines, and MiniRTOS."""

import pytest

from repro.baselines import (
    always_on_cost,
    always_on_transform,
    star_logic_analysis,
)
from repro.baselines.alwayson import untrusted_store_addresses
from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.rtos import rtos_completion_stop, rtos_source
from repro.workloads.registry import benchmark


class TestStarLogic:
    def test_violator_collapses_most_of_the_netlist(self):
        """Footnote 8: the unknown+tainted PC drags most gates with it."""
        result = star_logic_analysis(
            benchmark("binSearch").service_program(), cycles=400
        )
        assert result.pc_lost_at is not None
        assert result.peak_unknown_tainted_fraction > 0.5
        assert not result.watchdog_verifiable
        assert "70%" in result.report() or "%" in result.report()

    def test_clean_kernel_keeps_control_and_watchdog(self):
        """Heavily tainted *dataflow* is fine under *-logic -- what
        matters is that the PC survives and the watchdog stays verifiable
        (it does not on the violators)."""
        result = star_logic_analysis(
            benchmark("mult").service_program(), cycles=400
        )
        assert result.pc_lost_at is None
        assert result.peak_unknown_tainted_fraction < 0.5
        assert result.watchdog_verifiable
        violator = star_logic_analysis(
            benchmark("binSearch").service_program(), cycles=400
        )
        assert (
            violator.peak_unknown_tainted_fraction
            > result.peak_unknown_tainted_fraction
        )

    def test_report_renders(self):
        result = star_logic_analysis(
            benchmark("tHold").service_program(), cycles=200
        )
        assert "*-logic" in result.report()


class TestAlwaysOn:
    def test_cost_model(self):
        cost = always_on_cost(task_cycles=500, dynamic_stores=20)
        assert cost.masked_cycles == 500 + 120
        assert cost.protected_cycles >= cost.masked_cycles
        assert cost.overhead_cycles == cost.protected_cycles - 500
        assert cost.overhead_fraction > 0

    def test_zero_work(self):
        cost = always_on_cost(0, 0)
        assert cost.overhead_fraction == 0.0

    def test_store_enumeration(self):
        program = benchmark("inSort").service_program()
        stores = untrusted_store_addresses(program)
        assert len(stores) >= 3  # gather store + shift store + place store
        task = program.task_named("bench")
        assert all(task.contains(address) for address in stores)

    def test_transform_masks_every_store(self):
        info = benchmark("mult")
        program = info.service_program()
        stores = untrusted_store_addresses(program, include_pushes=True)
        new_source = always_on_transform(info.service_source, program)
        assert new_source.count("memory-bounds mask") == len(stores)
        # the rewritten program still assembles
        assemble(new_source, name="mult_alwayson")

    def test_push_enumeration_flag(self):
        program = benchmark("mult").service_program()
        without = untrusted_store_addresses(program)
        with_pushes = untrusted_store_addresses(
            program, include_pushes=True
        )
        assert len(with_pushes) == len(without) + 2  # push r10 / push r11


class TestMiniRTOS:
    def test_assembles_with_scheduler_at_reset_vector(self):
        program = assemble(rtos_source(), name="minirtos")
        rtos = program.task_named("rtos")
        assert rtos.trusted
        assert rtos.start == 0  # scheduler doubles as the reset vector
        assert not program.task_named("bs_task").trusted
        assert program.task_named("div_task").trusted

    def test_round_robin_runs_both_tasks(self):
        program = assemble(rtos_source(), name="minirtos")
        run = run_concrete(
            program, stop=rtos_completion_stop, max_cycles=100_000
        )
        assert run.writes_to("P4OUT") >= 1  # trusted div output
        assert run.writes_to("P2OUT") >= 1  # untrusted binSearch output

    def test_unprotected_rtos_violates(self):
        program = assemble(rtos_source(), name="minirtos")
        result = TaintTracker(program, max_cycles=1_500_000).run()
        assert not result.secure
        assert result.violated_conditions() == {1, 2}
        assert result.tasks_needing_watchdog() == ["bs_task"]
        assert result.violating_stores()
