"""Tests for the naive (value-blind) taint ablation baseline."""

import pytest

from repro.baselines.naive import naive_compiled_cpu, naive_taint_analysis
from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.logic.words import TWord
from repro.netlist.builder import CircuitBuilder
from repro.sim.compiled import CompiledCircuit
from repro.workloads.registry import benchmark


class TestNaiveLuts:
    def test_and_mask_does_not_strip_taint(self):
        builder = CircuitBuilder("m")
        a = builder.input("a", 4)
        builder.output("out", builder.and_(a, builder.const(0b0011, 4)))
        netlist = builder.build()

        glift = CompiledCircuit(netlist)
        naive = CompiledCircuit(netlist, taint_mode="naive")
        word = TWord.unknown(4, tmask=0xF)

        state = glift.new_state()
        glift.set_input(state, "a", word)
        glift.eval_combinational(state)
        assert glift.read_output(state, "out").tmask == 0b0011

        state = naive.new_state()
        naive.set_input(state, "a", word)
        naive.eval_combinational(state)
        # naive propagation: the untainted mask cannot strip anything
        assert naive.read_output(state, "out").tmask == 0b1111

    def test_values_identical_across_modes(self):
        builder = CircuitBuilder("m")
        a = builder.input("a", 4)
        b = builder.input("b", 4)
        total, _ = builder.add(a, b)
        builder.output("sum", total)
        netlist = builder.build()
        glift = CompiledCircuit(netlist)
        naive = CompiledCircuit(netlist, taint_mode="naive")
        for left, right in ((3, 9), (15, 1), (0, 0)):
            for circuit in (glift, naive):
                state = circuit.new_state()
                circuit.set_input(state, "a", TWord.const(left, 4))
                circuit.set_input(state, "b", TWord.const(right, 4))
                circuit.eval_combinational(state)
                assert (
                    circuit.read_output(state, "sum").value
                    == (left + right) & 0xF
                )

    def test_unknown_mode_rejected(self):
        builder = CircuitBuilder("m")
        a = builder.input("a", 1)
        builder.output("out", builder.not_(a))
        with pytest.raises(ValueError, match="taint mode"):
            CompiledCircuit(builder.build(), taint_mode="bogus")


class TestNaiveAnalysis:
    def test_clean_benchmark_is_false_positive(self):
        program = benchmark("mult").service_program()
        glift = TaintTracker(program, max_cycles=400_000).run()
        naive = naive_taint_analysis(program, max_cycles=400_000)
        assert glift.secure
        assert not naive.secure

    def test_naive_cpu_cached(self):
        assert naive_compiled_cpu() is naive_compiled_cpu()
