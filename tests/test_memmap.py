"""Tests for the system memory map."""

from repro import memmap


class TestRegions:
    def test_layout_is_consistent(self):
        assert memmap.PERIPH_END <= memmap.RAM_BASE
        assert memmap.RAM_END == memmap.DMEM_SIZE
        assert (
            memmap.RAM_BASE
            <= memmap.TAINTED_RAM_BASE
            < memmap.TAINTED_RAM_END
            <= memmap.RAM_END
        )

    def test_tainted_window_is_power_of_two_aligned(self):
        size = memmap.TAINTED_RAM_END - memmap.TAINTED_RAM_BASE
        assert size & (size - 1) == 0
        assert memmap.TAINTED_RAM_BASE % size == 0
        assert memmap.TAINTED_RAM_MASK == size - 1

    def test_peripheral_addresses_in_page(self):
        for name, address in memmap.PERIPHERAL_SYMBOLS.items():
            assert memmap.PERIPHERAL_REGION.contains(address), name

    def test_stack_top_in_ram(self):
        assert memmap.RAM_REGION.contains(memmap.STACK_TOP)

    def test_region_helpers(self):
        region = memmap.MemoryRegion("r", 4, 8)
        assert region.contains(4)
        assert region.contains(7)
        assert not region.contains(8)
        assert region.size == 4

    def test_figure9_constants(self):
        # the paper's mask/base pair
        assert memmap.TAINTED_RAM_MASK == 0x03FF
        assert memmap.TAINTED_RAM_BASE == 0x0400
