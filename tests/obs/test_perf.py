"""The attribution profiler: document shape, accounting, CLI artifacts."""

import json

import pytest

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.obs.perf import (
    PERF_SCHEMA,
    PerfAttribution,
    PerfHarness,
    get_perf,
    install_perf,
    record_perf,
)
from repro.obs.perfview import build_perf_report
from repro.sim.runner import GateRunner

LOOP = """
    mov #6, r10
loop:
    dec r10
    jnz loop
    halt
"""


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


@pytest.fixture(scope="module")
def harness(circuit):
    recorder = PerfAttribution(sample_every=2)
    run = PerfHarness(
        GateRunner(circuit, assemble(LOOP, name="loop")), recorder
    )
    run.run(max_cycles=200)
    return run


@pytest.fixture(scope="module")
def document(harness):
    return harness.to_document("loop")


class TestInstallation:
    def test_nothing_armed_by_default(self):
        assert get_perf() is None

    def test_record_perf_scopes_the_recorder(self):
        recorder = PerfAttribution()
        with record_perf(recorder) as armed:
            assert armed is recorder
            assert get_perf() is recorder
        assert get_perf() is None

    def test_install_returns_previous(self):
        first, second = PerfAttribution(), PerfAttribution()
        assert install_perf(first) is None
        assert install_perf(second) is first
        assert install_perf(None) is second

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            PerfAttribution(sample_every=0)


class TestAttributionDocument:
    def test_schema_and_workload(self, document):
        assert document["schema"] == PERF_SCHEMA
        assert document["workload"] == "loop"
        assert document["cycles"] > 0

    def test_every_rank_is_attributed(self, document, circuit):
        full_ranks = [
            rank for rank in document["ranks"] if rank["kind"] == "full"
        ]
        assert len(full_ranks) == len(circuit._levels)
        assert all(rank["evals"] > 0 for rank in full_ranks)
        assert all(rank["seconds"] >= 0.0 for rank in full_ranks)

    def test_cell_type_totals_match_rank_totals(self, document):
        by_rank = sum(rank["seconds"] for rank in document["ranks"])
        by_type = sum(
            stats["seconds"]
            for stats in document["cell_types"].values()
        )
        assert by_rank == pytest.approx(by_type)
        assert by_rank == pytest.approx(
            document["attributed_group_seconds"]
        )

    def test_wall_decomposition_covers_the_run(self, document):
        # The acceptance bar: components sum to within 10% of wall.
        assert document["attributed_fraction"] == pytest.approx(
            1.0, abs=0.10
        )
        parts = (
            document["eval_seconds"]
            + document["clock_seconds"]
            + document["soc_python_seconds"]
            + document["halt_probe_seconds"]
        )
        assert parts == pytest.approx(
            document["attributed_seconds"], rel=1e-6
        )

    def test_cones_cover_every_output_port(self, document, circuit):
        ports = {cone["port"] for cone in document["cones"]}
        assert ports == {
            port.name for port in circuit.netlist.outputs
        }

    def test_quiescence_fractions_are_complementary(self, document):
        for cone in document["cones"]:
            assert cone["samples"] > 0
            assert cone["active_fraction"] + cone[
                "quiescent_fraction"
            ] == pytest.approx(1.0)
            assert 0.0 <= cone["toggle_rate"] <= 1.0

    def test_activity_sampling_happened(self, document):
        assert document["activity"]["samples"] > 1
        assert 0.0 < document["activity"]["mean_changed_fraction"] <= 1.0

    def test_document_round_trips_through_json(self, document):
        assert json.loads(json.dumps(document)) == document


class TestDenseEvalReconstruction:
    def test_dense_counts_are_gates_times_passes(self, document):
        """The dense engine has no eval counters: the document
        reconstructs evals as gates x passes with nothing skipped."""
        assert document["engine"] == "dense"
        assert document["skipped_evals"] == 0
        passes = document["passes"]
        for rank in document["ranks"]:
            plan_passes = passes[rank["kind"]]
            assert rank["evals"] == rank["gates_per_pass"] * plan_passes
            assert rank["skipped"] == 0
            for cell in rank["cells"].values():
                assert cell["evals"] == cell["gates"] * plan_passes
                assert cell["skipped"] == 0


class TestEventEngineAttribution:
    @pytest.fixture(scope="class")
    def event_document(self):
        recorder = PerfAttribution(sample_every=2)
        run = PerfHarness(
            GateRunner(
                compiled_cpu("event"), assemble(LOOP, name="loop")
            ),
            recorder,
        )
        run.run(max_cycles=200)
        return run.to_document("loop")

    def test_engine_and_skips_are_reported(self, event_document):
        assert event_document["engine"] == "event"
        assert event_document["skipped_evals"] > 0

    def test_counted_evals_never_exceed_dense_reconstruction(
        self, event_document
    ):
        """evals + skipped = gates x passes per cell -- the counted
        slots replace, and must stay consistent with, the dense
        reconstruction."""
        passes = event_document["passes"]
        for rank in event_document["ranks"]:
            plan_passes = passes[rank["kind"]]
            for cell in rank["cells"].values():
                dense_evals = cell["gates"] * plan_passes
                # Burst-escalated passes may re-evaluate a gate, so
                # evals can exceed the dense total; skipped is clamped.
                assert cell["skipped"] == max(
                    0, dense_evals - cell["evals"]
                )

    def test_skipped_gates_are_not_attributed_time(self, event_document):
        """A rank the sweep never touched must report zero seconds:
        time attribution follows actual evaluations, not the static
        gate count."""
        untouched = [
            rank
            for rank in event_document["ranks"]
            if rank["evals"] == 0 and rank["gates_per_pass"] > 0
        ]
        assert untouched, "expected some fully-skipped ranks"
        for rank in untouched:
            assert rank["seconds"] == 0.0
            assert rank["skipped"] > 0

    def test_cell_type_aggregates_include_skips(self, event_document):
        total = sum(
            stats["skipped"]
            for stats in event_document["cell_types"].values()
        )
        assert total == event_document["skipped_evals"]

    def test_document_round_trips_through_json(self, event_document):
        assert (
            json.loads(json.dumps(event_document)) == event_document
        )


class TestUninstrumentedEquivalence:
    def test_armed_run_computes_identical_architectural_state(
        self, circuit
    ):
        program = assemble(LOOP, name="loop")
        plain = GateRunner(circuit, program)
        plain.run(max_cycles=200)
        armed = GateRunner(circuit, program)
        PerfHarness(armed, PerfAttribution(sample_every=2)).run(
            max_cycles=200
        )
        assert armed.soc.cycle == plain.soc.cycle
        for index in range(16):
            assert armed.register(index) == plain.register(index)


class TestHtmlReport:
    def test_report_is_self_contained(self, document):
        html = build_perf_report(document)
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_report_names_the_hot_ranks_and_cones(self, document):
        html = build_perf_report(document)
        hottest = max(document["ranks"], key=lambda rank: rank["seconds"])
        assert f"rank {hottest['rank']}" in html
        for cone in document["cones"][:3]:
            assert cone["port"] in html


class TestPerfCli:
    def test_cmd_perf_writes_json_and_html(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "perf",
                "intavg",
                "--max-cycles",
                "150",
                "--sample-every",
                "4",
            ]
        )
        assert code == 0
        document = json.loads((tmp_path / "PERF_intAVG.json").read_text())
        assert document["schema"] == PERF_SCHEMA
        assert document["attributed_fraction"] == pytest.approx(
            1.0, abs=0.10
        )
        html = (tmp_path / "perf_intAVG.html").read_text()
        assert "<script" not in html
        out = capsys.readouterr().out
        assert "hottest ranks" in out
        assert "cone quiescence" in out

    def test_cmd_perf_event_engine_reports_skips(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "perf",
                "intavg",
                "--max-cycles",
                "150",
                "--sample-every",
                "4",
                "--engine",
                "event",
            ]
        )
        assert code == 0
        document = json.loads((tmp_path / "PERF_intAVG.json").read_text())
        assert document["engine"] == "event"
        assert document["skipped_evals"] > 0
        out = capsys.readouterr().out
        assert "event engine:" in out
        assert "gate evaluations skipped" in out
