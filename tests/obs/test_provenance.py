"""Tests for the taint-provenance recorder, slicer and report."""

import numpy as np
import pytest

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.obs.provenance import (
    KIND_GATE,
    ProvenanceRecorder,
    explain_violation,
    get_recorder,
    install_recorder,
    record_provenance,
)
from repro.obs.report import build_report
from repro.workloads.motivating import figure4_source


def _ids(values):
    return np.asarray(values, dtype=np.int64)


class TestRecorder:
    def test_off_by_default(self):
        assert get_recorder() is None

    def test_hook_installs_and_restores(self):
        recorder = ProvenanceRecorder(capacity=16)
        with record_provenance(recorder) as installed:
            assert installed is recorder
            assert get_recorder() is recorder
        assert get_recorder() is None

    def test_hook_restores_on_exception(self):
        recorder = ProvenanceRecorder(capacity=16)
        with pytest.raises(RuntimeError):
            with record_provenance(recorder):
                raise RuntimeError("boom")
        assert get_recorder() is None
        assert install_recorder(None) is None

    def test_label_interning_is_stable(self):
        recorder = ProvenanceRecorder(capacity=16)
        first = recorder.label_id("P1IN")
        second = recorder.label_id("rom")
        assert first == recorder.label_id("P1IN")
        assert first != second
        assert first < 0 and second < 0
        assert recorder.node_name(first) == "P1IN"
        assert recorder.node_name(second) == "rom"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(capacity=0)

    def test_ring_wrap_sets_truncated_and_keeps_newest(self):
        recorder = ProvenanceRecorder(capacity=4)
        recorder.bind_raw(100)
        for cycle in range(6):
            recorder.begin_cycle(cycle)
            recorder.record_gate(_ids([cycle]), _ids([cycle + 50]))
        assert recorder.recorded == 6
        assert recorder.truncated
        # Only the newest 4 edges survive; dst 0 and 1 were evicted.
        index = recorder._dst_index()
        assert 0 not in index and 1 not in index
        assert sorted(index) == [2, 3, 4, 5]

    def test_ram_pseudo_net_naming(self):
        recorder = ProvenanceRecorder(capacity=16)
        recorder.bind_raw(10)
        node = recorder.ram_node(0x42)
        assert recorder.node_name(node) == "ram[0x0042]"
        assert recorder.is_source_node(node)
        assert not recorder.is_source_node(3)

    def test_slice_chases_through_gate_dff_and_ram(self):
        """input -> gate -> dff -> ram store -> ram load -> sink."""
        recorder = ProvenanceRecorder(capacity=64)
        recorder.bind_raw(100)
        recorder.begin_cycle(1)
        recorder.record_input([10], tmask=1, label="P1IN")
        recorder.record_gate(_ids([11]), _ids([10]))
        recorder.record_latch(_ids([12]), _ids([11]))
        recorder.begin_cycle(2)
        recorder.record_ram_write([7], _ids([12]))
        recorder.begin_cycle(3)
        recorder.record_ram_read([13], tmask=1, word=7)
        flow = recorder.slice_to([13], cycle=3)
        assert "P1IN" in flow.origins
        assert "ram[0x0007]" in flow.origins
        assert flow.chain, "expected a linear origin->sink chain"
        assert flow.chain[0].src_name == "P1IN"
        assert flow.chain[-1].dst == 13
        kinds = {edge.kind for edge in flow.edges}
        assert kinds == {"input", "gate", "dff", "ram"}

    def test_slice_unrecorded_taint_is_honest_dead_end(self):
        recorder = ProvenanceRecorder(capacity=16)
        recorder.bind_raw(100)
        recorder.begin_cycle(1)
        # net 20's own cause was never recorded
        recorder.record_gate(_ids([21]), _ids([20]))
        flow = recorder.slice_to([21], cycle=1)
        assert flow.origins == []
        assert any("(unrecorded)" in leaf.name for leaf in flow.leaves)
        assert "unrecorded" in flow.summary() or flow.origins == []

    def test_slice_ignores_later_reconvergence(self):
        """Events recorded *after* the sink's cause must not alias the
        backward walk into a cycle (tracker re-simulates cycle numbers)."""
        recorder = ProvenanceRecorder(capacity=64)
        recorder.bind_raw(100)
        recorder.begin_cycle(1)
        recorder.record_input([10], tmask=1, label="P1IN")
        recorder.record_gate(_ids([11]), _ids([10]))
        # a restored sibling path re-taints 10 *from* 11 at the same cycle
        recorder.begin_cycle(1)
        recorder.record_gate(_ids([10]), _ids([11]))
        flow = recorder.slice_to([11], cycle=1)
        assert flow.origins == ["P1IN"]

    def test_cross_product_edges_are_capped(self):
        recorder = ProvenanceRecorder(capacity=4096)
        recorder.bind_raw(1000)
        recorder.begin_cycle(0)
        recorder.record_cross(_ids(range(32)), _ids(range(100, 164)))
        from repro.obs.provenance import CROSS_EDGE_CAP

        assert recorder.recorded <= CROSS_EDGE_CAP

    def test_smeared_ram_write_cap_sets_truncated(self):
        from repro.obs.provenance import RAM_WRITE_CAP

        recorder = ProvenanceRecorder(capacity=4096)
        recorder.bind_raw(100)
        recorder.begin_cycle(0)
        recorder.record_ram_write(list(range(RAM_WRITE_CAP + 8)), _ids([1]))
        assert recorder.truncated

    def test_cycle_activity_buckets(self):
        recorder = ProvenanceRecorder(capacity=256)
        recorder.bind_raw(100)
        for cycle in range(20):
            recorder.begin_cycle(cycle)
            recorder.record_gate(_ids([1, 2]), _ids([3, 4]))
        activity = recorder.cycle_activity(buckets=5)
        assert len(activity) == 5
        assert sum(entry["edges"] for entry in activity) == 40
        assert activity[0]["from_cycle"] == 0

    def test_export_restore_roundtrip(self):
        recorder = ProvenanceRecorder(capacity=32)
        recorder.bind_raw(100)
        recorder.begin_cycle(1)
        recorder.record_input([10], tmask=1, label="P1IN")
        recorder.record_gate(_ids([11]), _ids([10]))
        state = recorder.export_state()
        clone = ProvenanceRecorder(capacity=32)
        clone.restore_state(state)
        flow = clone.slice_to([11], cycle=1)
        assert flow.origins == ["P1IN"]
        assert clone.recorded == recorder.recorded

    def test_restore_into_smaller_ring_keeps_newest(self):
        recorder = ProvenanceRecorder(capacity=32)
        recorder.bind_raw(100)
        for cycle in range(8):
            recorder.begin_cycle(cycle)
            recorder.record_gate(_ids([cycle]), _ids([cycle + 50]))
        clone = ProvenanceRecorder(capacity=4)
        clone.restore_state(recorder.export_state())
        assert clone.truncated
        index = clone._dst_index()
        assert sorted(index) == [4, 5, 6, 7]


@pytest.fixture(scope="module")
def figure4_result():
    program = assemble(figure4_source(), name="figure4")
    recorder = ProvenanceRecorder()
    result = TaintTracker(
        program, default_policy(), provenance=recorder
    ).run()
    return result


class TestExplainEndToEnd:
    def test_analysis_is_insecure(self, figure4_result):
        assert figure4_result.verdict == "insecure"
        assert figure4_result.violations
        assert figure4_result.provenance is not None

    def test_every_violation_reaches_a_labelled_origin(self, figure4_result):
        for index in range(len(figure4_result.violations)):
            flow = explain_violation(figure4_result, index)
            assert flow.origins, f"violation {index} found no origin"
            assert flow.chain, f"violation {index} has no linear chain"
            # leaf = a labelled tainted input (P1IN or tainted rom/ram)
            assert flow.chain[0].src < 0 or flow.chain[0].src_name.startswith(
                "ram["
            )

    def test_store_violation_chain_ends_at_write_port(self, figure4_result):
        store = next(
            index
            for index, violation in enumerate(figure4_result.violations)
            if violation.kind == "tainted_write_untainted_memory"
        )
        flow = figure4_result.explain(store)
        assert "P1IN" in flow.origins
        assert flow.chain[-1].dst_name.startswith(
            ("dmem_wdata", "dmem_addr")
        )

    def test_explain_index_out_of_range(self, figure4_result):
        with pytest.raises(IndexError):
            explain_violation(figure4_result, 99)

    def test_explain_requires_a_recorder(self):
        program = assemble(figure4_source(), name="figure4")
        result = TaintTracker(program, default_policy()).run()
        with pytest.raises(ValueError):
            explain_violation(result, 0)

    def test_dot_export_is_wellformed(self, figure4_result):
        flow = figure4_result.explain(0)
        dot = flow.to_dot(title="test")
        assert dot.startswith("digraph taint_flow {")
        assert dot.rstrip().endswith("}")
        assert '"P1IN"' in dot
        assert "->" in dot

    def test_to_document_is_json_ready(self, figure4_result):
        import json

        document = figure4_result.explain(0).to_document()
        json.dumps(document)
        assert document["origins"]
        assert document["chain"]

    def test_checkpoint_roundtrip_preserves_provenance(self, figure4_result):
        payload = {
            "provenance": figure4_result.provenance.export_state(),
        }
        program = assemble(figure4_source(), name="figure4")
        recorder = ProvenanceRecorder()
        recorder.restore_state(payload["provenance"])
        assert recorder.recorded == figure4_result.provenance.recorded
        assert recorder.truncated == figure4_result.provenance.truncated

    def test_html_report_is_self_contained(self, figure4_result):
        html = build_report(figure4_result)
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "INSECURE" in html
        assert "P1IN" in html
        assert "heatmap" in html
        assert "digraph taint_flow" in html

    def test_report_without_recorder_still_renders(self, figure4_result):
        program = assemble(figure4_source(), name="figure4")
        result = TaintTracker(program, default_policy()).run()
        html = build_report(result)
        assert "INSECURE" in html
        assert "digraph" not in html

    def test_root_causes_carry_explanations(self, figure4_result):
        from repro.transform.rootcause import identify_root_causes

        causes = identify_root_causes(figure4_result)
        assert causes.explanations
        assert all(flow.violation is not None for flow in causes.explanations)
        assert any(flow.origins for flow in causes.explanations)
