"""End-to-end observability: trace + metrics from a real analysis.

Uses a small two-task workload whose untrusted service branches on a
tainted flag, so the exploration must fork on the concretised PC and
later terminate paths by merging -- exactly the Figure 7 shape the
trace is meant to make visible.
"""

import pytest

from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.obs import Observer, TraceRecorder, observe, read_events

FORKY = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    and #0x0001, r4
    jnz app_done
    mov #1, r5
app_done:
    ret
"""


def _traced_run(path):
    program = assemble(FORKY, name="forky")
    observer = Observer(trace=TraceRecorder(path))
    with observe(observer):
        result = TaintTracker(program).run()
    observer.close()
    return result, observer, read_events(path)


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    return _traced_run(path)


class TestTraceEvents:
    def test_forks_and_prunes_are_traced(self, traced):
        result, _, events = traced
        kinds = [event["event"] for event in events]
        assert kinds.count("fork") >= 1
        assert kinds.count("prune") >= 1
        assert kinds.count("fork") == result.stats.forks

    def test_fork_event_shape(self, traced):
        _, _, events = traced
        fork = next(e for e in events if e["event"] == "fork")
        assert fork["pc_tainted"] is True
        assert len(fork["children"]) == len(fork["targets"]) >= 2
        assert all(t.startswith("0x") for t in fork["targets"])
        assert fork["site"].startswith("0x")

    def test_prune_names_a_tree_node(self, traced):
        result, _, events = traced
        for prune in (e for e in events if e["event"] == "prune"):
            if prune["site"] == "POR":
                continue
            assert 0 <= prune["node"] < len(result.tree)

    def test_violations_match_analysis(self, traced):
        result, _, events = traced
        traced_violations = [
            e for e in events if e["event"] == "violation"
        ]
        assert len(traced_violations) == len(result.violations)
        for event, violation in zip(traced_violations, result.violations):
            assert event["kind"] == violation.kind
            assert event["condition"] == violation.condition

    def test_event_sequence_is_deterministic(self, tmp_path):
        def shape(events):
            return [
                {k: v for k, v in event.items() if k != "wall"}
                for event in events
            ]

        _, _, first = _traced_run(tmp_path / "a.jsonl")
        _, _, second = _traced_run(tmp_path / "b.jsonl")
        assert shape(first) == shape(second)


class TestMetrics:
    def test_counters_match_stats(self, traced):
        result, observer, _ = traced
        counters = observer.snapshot()["metrics"]["counters"]
        assert counters["tracker.forks"] == result.stats.forks
        assert counters["tracker.merges"] == result.stats.merges
        assert counters["tracker.paths"] == result.stats.paths
        assert counters["tree.nodes"] == len(result.tree)
        assert counters["tree.pruned"] == (
            result.stats.terminations_by_merge
        )
        assert counters["tracker.violations"] == len(result.violations)
        assert counters["sim.gate_evals"] > 0

    def test_peak_merged_states_gauge(self, traced):
        result, observer, _ = traced
        gauges = observer.snapshot()["metrics"]["gauges"]
        assert gauges["tracker.peak_merged_states"] >= 1
        assert (
            gauges["tracker.peak_merged_states"]
            == result.stats.peak_merged_states
        )

    def test_taint_density_histogram(self, traced):
        _, observer, _ = traced
        density = observer.snapshot()["metrics"]["histograms"][
            "tracker.taint_density"
        ]
        assert density["count"] > 0
        assert 0.0 <= density["mean"] <= 1.0

    def test_explore_and_check_spans(self, traced):
        _, observer, _ = traced
        profile = observer.snapshot()["profile"]
        assert profile["explore"]["calls"] == 1
        assert profile["explore"]["wall_seconds"] > 0
        assert "check" in profile


class TestDisabledPath:
    def test_analysis_unchanged_without_observer(self, traced):
        result, _, _ = traced
        bare = TaintTracker(assemble(FORKY, name="forky")).run()
        assert bare.secure == result.secure
        assert bare.stats.forks == result.stats.forks
        assert bare.stats.cycles_simulated == result.stats.cycles_simulated
        assert len(bare.tree) == len(result.tree)
