"""`repro record` / `repro view` end-to-end, and viewer self-containment.

The acceptance loop from the issue: record a workload, render the
viewer, and prove that scrubbing to the violation cycle shows the same
tainted nets ``repro explain`` names -- the timeline read forward must
agree with the provenance slice read backward.
"""

import json

import pytest

from repro.cli import main
from repro.core import TaintTracker, default_policy
from repro.obs import ProvenanceRecorder, TimelineRecorder, read_events
from repro.obs.provenance import explain_violation, sink_nets_for
from repro.obs.timeline import load_timeline
from repro.obs.viewer import build_viewer
from repro.isa.assembler import assemble
from repro.workloads.motivating import figure4_source


def _figure4_program():
    return assemble(figure4_source(), name="figure4")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One `repro record figure4` run shared by the CLI tests."""
    root = tmp_path_factory.mktemp("record")
    timeline_path = root / "t.timeline"
    trace_path = root / "t.jsonl"
    code = main(
        [
            "record",
            "figure4",
            "--out",
            str(timeline_path),
            "--trace",
            str(trace_path),
        ]
    )
    assert code == 0
    return timeline_path, trace_path


class TestRecordCli:
    def test_writes_a_loadable_timeline(self, recorded, capsys):
        timeline_path, _ = recorded
        timeline = load_timeline(timeline_path)
        assert timeline.num_frames > 0
        assert timeline.num_nets > 0
        assert timeline.markers, "figure4 violates; markers expected"
        assert timeline.meta["workload"] == "figure4"
        assert timeline.meta["verdict"] == "insecure"

    def test_trace_carries_timeline_and_record_events(self, recorded):
        _, trace_path = recorded
        events = read_events(trace_path)
        by_type = {event["event"] for event in events}
        assert "timeline" in by_type
        assert "record" in by_type
        record = next(e for e in events if e["event"] == "record")
        assert record["frames"] > 0
        assert record["truncated"] is False
        assert record["workload"] == "figure4"

    def test_trace_lints_clean_under_v3(self, recorded, capsys):
        _, trace_path = recorded
        assert main(["trace-lint", str(trace_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_record_exit_zero_even_when_insecure(self, recorded, capsys):
        # `repro record x && repro view x` must chain: recording is an
        # artifact-producing command, the verdict is in the output text.
        timeline_path, _ = recorded
        assert timeline_path.exists()

    def test_max_frames_truncates(self, tmp_path, capsys):
        out = tmp_path / "small.timeline"
        assert (
            main(
                ["record", "figure4", "--out", str(out), "--max-frames", "10"]
            )
            == 0
        )
        assert "[truncated]" in capsys.readouterr().out
        assert load_timeline(out).num_frames == 10


class TestViewCli:
    def test_view_writes_self_contained_html(self, recorded, tmp_path, capsys):
        timeline_path, _ = recorded
        html_path = tmp_path / "t.html"
        assert main(["view", str(timeline_path), "--out", str(html_path)]) == 0
        html = html_path.read_text()
        assert "http://" not in html and "https://" not in html
        assert "<style>" in html and "<script" in html
        assert "tl-data" in html
        assert "figure4" in html  # title from the timeline metadata
        assert "marker" in html

    def test_missing_timeline_is_a_checkpoint_error(self, tmp_path):
        assert main(["view", str(tmp_path / "nope.timeline")]) == 5


class TestViewerAgreesWithExplain:
    def test_violation_frame_shows_explains_tainted_nets(self):
        """Acceptance: scrub to the violation cycle -> the nets `repro
        explain` names as tainted sinks are tainted in the timeline."""
        program = _figure4_program()
        timeline_recorder = TimelineRecorder()
        provenance = ProvenanceRecorder(capacity=1 << 20)
        result = TaintTracker(
            program,
            policy=default_policy(),
            provenance=provenance,
            timeline=timeline_recorder,
        ).run()
        assert result.violations
        timeline = timeline_recorder.to_timeline(result.violations)
        checked = 0
        for violation in result.violations:
            flow = explain_violation(result, violation, recorder=provenance)
            if not flow.sink_nets:
                continue
            frames = timeline.frames_at_cycle(violation.cycle)
            if not frames:
                continue
            tainted_here = timeline.slice_nets_tainted_at(flow)
            assert set(tainted_here) == set(flow.sink_nets), (
                f"{violation.kind}@{violation.cycle}: timeline and "
                "explain disagree on tainted sink nets"
            )
            # and the policy's sink ports for this kind agree too
            codes = timeline.seek(timeline.latest_frame_at_cycle(violation.cycle))
            sink_nets = sink_nets_for(result.circuit, violation.kind)
            sink_tainted = [n for n in sink_nets if codes[n] & 1]
            assert set(flow.sink_nets) <= set(sink_tainted)
            checked += 1
        assert checked > 0, "no violation was checkable"

    def test_viewer_marker_lists_tainted_port_bits(self):
        program = _figure4_program()
        recorder = TimelineRecorder()
        result = TaintTracker(
            program, policy=default_policy(), timeline=recorder
        ).run()
        timeline = recorder.to_timeline(result.violations)
        html = build_viewer(timeline)
        payload = html.split("id='tl-data'>")[1].split("</script>")[0]
        data = json.loads(payload)
        assert data["markers"], "figure4 markers must land in the viewer"
        write_markers = [
            marker
            for marker in data["markers"]
            if marker["kind"] == "tainted_write_untainted_memory"
        ]
        for marker in write_markers:
            assert any(
                name.startswith("dmem_") for name in marker["tainted_ports"]
            ), marker
        # every lane series covers every frame
        for port in data["lane_order"]:
            assert len(data["lanes"][port]) == len(data["cycles"])


class TestReportLink:
    def test_report_embeds_timeline_link(self, tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main(
            [
                "report",
                "figure4",
                "-o",
                str(out),
                "--timeline",
                "t.html",
            ]
        )
        assert code == 0
        html = out.read_text()
        assert "href='t.html'" in html
        # the report itself must stay script-free and self-contained
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
