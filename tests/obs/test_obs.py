"""Unit tests for the repro.obs instruments."""

import io
import json

import pytest

from repro.obs import (
    NULL_OBSERVER,
    ManualClock,
    MetricsRegistry,
    NullObserver,
    Observer,
    Profiler,
    TraceRecorder,
    get_observer,
    observe,
    read_events,
    set_observer,
)
from repro.obs.metrics import Counter, Histogram


class TestMetrics:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 5

    def test_counter_identity_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_update_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak")
        gauge.update_max(3)
        gauge.update_max(1)
        assert gauge.value == 3
        gauge.set(0)
        assert gauge.value == 0

    def test_histogram_buckets(self):
        histogram = Histogram("density", bounds=(0.1, 0.5, 1.0))
        for value in (0.05, 0.3, 0.3, 0.9, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.05
        assert snap["max"] == 2.0
        assert snap["mean"] == pytest.approx(3.55 / 5)
        assert snap["buckets"] == {
            "<=0.1": 1, "<=0.5": 2, "<=1": 1, "+inf": 1,
        }

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(0.5, 0.1))

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"] == {"a": 2, "z": 1}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-ready as-is


class TestTraceRecorder:
    def test_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as trace:
            trace.emit("fork", site="0x0010", children=[1, 2])
            trace.emit("prune", site="0x0010", node=2)
        events = read_events(path)
        assert [event["event"] for event in events] == ["fork", "prune"]
        assert events[0]["children"] == [1, 2]
        assert all("wall" in event for event in events)
        assert trace.events_written == 2

    def test_wall_is_relative_to_open(self):
        clock = ManualClock(wall=100.0)
        sink = io.StringIO()
        trace = TraceRecorder(sink, clock=clock)
        clock.advance(1.5)
        trace.emit("step", cycle=1)
        event = json.loads(sink.getvalue())
        assert event["wall"] == pytest.approx(1.5)

    def test_non_json_fields_are_coerced(self):
        sink = io.StringIO()
        trace = TraceRecorder(sink)
        trace.emit("merge", sites={"b", "a"}, where=object())
        event = json.loads(sink.getvalue())
        assert event["sites"] == ["a", "b"]
        assert isinstance(event["where"], str)

    def test_file_like_sink_is_not_closed(self):
        sink = io.StringIO()
        with TraceRecorder(sink) as trace:
            trace.emit("step")
        assert not sink.closed


class TestProfiler:
    def test_span_accumulates_wall_and_cpu(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with profiler.span("explore"):
            clock.advance(2.0, cpu=1.0)
        with profiler.span("explore"):
            clock.advance(1.0, cpu=0.5)
        snap = profiler.snapshot()
        assert snap["explore"]["calls"] == 2
        assert snap["explore"]["wall_seconds"] == pytest.approx(3.0)
        assert snap["explore"]["cpu_seconds"] == pytest.approx(1.5)

    def test_nested_spans_key_by_path(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with profiler.span("repair"):
            clock.advance(1.0)
            with profiler.span("explore"):
                clock.advance(2.0)
        snap = profiler.snapshot()
        assert snap["repair/explore"]["wall_seconds"] == pytest.approx(2.0)
        # the parent includes the child's time (inclusive accounting)
        assert snap["repair"]["wall_seconds"] == pytest.approx(3.0)
        assert profiler.depth == 0

    def test_span_survives_exceptions(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with pytest.raises(RuntimeError):
            with profiler.span("explore"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        assert profiler.depth == 0
        assert profiler.snapshot()["explore"]["calls"] == 1


class TestObserver:
    def test_default_observer_is_null(self):
        assert get_observer() is NULL_OBSERVER
        assert not get_observer().enabled

    def test_null_observer_is_true_noop(self):
        null = NullObserver()
        null.emit("fork", site="x")
        null.counter("a").inc(5)
        null.gauge("g").set(3)
        null.histogram("h").observe(0.5)
        with null.span("explore"):
            pass
        snap = null.snapshot()
        assert snap["metrics"]["counters"] == {}
        assert snap["profile"] == {}
        # shared singletons: no per-call allocation on the disabled path
        assert null.counter("a") is null.counter("b")
        assert null.span("x") is null.span("y")

    def test_observe_installs_and_restores(self):
        observer = Observer()
        with observe(observer) as installed:
            assert installed is observer
            assert get_observer() is observer
        assert get_observer() is NULL_OBSERVER

    def test_observe_restores_on_exception(self):
        observer = Observer()
        with pytest.raises(RuntimeError):
            with observe(observer):
                raise RuntimeError("boom")
        assert get_observer() is NULL_OBSERVER

    def test_set_observer_none_means_null(self):
        previous = set_observer(None)
        assert previous is NULL_OBSERVER
        assert get_observer() is NULL_OBSERVER

    def test_observer_bundles_instruments(self, tmp_path):
        path = tmp_path / "t.jsonl"
        observer = Observer(trace=TraceRecorder(path))
        observer.counter("n").inc()
        observer.emit("step", cycle=0)
        with observer.span("check"):
            pass
        observer.close()
        snap = observer.snapshot()
        assert snap["metrics"]["counters"] == {"n": 1}
        assert "check" in snap["profile"]
        assert len(read_events(path)) == 1

    def test_emit_without_trace_is_noop(self):
        observer = Observer()  # no trace sink
        observer.emit("step", cycle=0)  # must not raise
        assert observer.trace is None
