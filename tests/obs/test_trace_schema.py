"""Trace schema v4: versioned events, sequence numbers, correlation
context, progress monotonicity, and the linter."""

import io
import json

from repro.obs import (
    EVENT_SCHEMAS,
    Observer,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    lint_trace,
)


def _events(sink: io.StringIO):
    return [
        json.loads(line) for line in sink.getvalue().splitlines() if line
    ]


class TestVersionAndSequence:
    def test_every_event_carries_version_and_seq(self):
        sink = io.StringIO()
        trace = TraceRecorder(sink)
        trace.emit("merge", site="0x10", cycle=1)
        trace.emit("prune", site="0x10", node=2, cycle=1)
        events = _events(sink)
        assert [event["v"] for event in events] == [TRACE_SCHEMA_VERSION] * 2
        assert [event["seq"] for event in events] == [0, 1]

    def test_set_sequence_continues_numbering(self):
        sink = io.StringIO()
        trace = TraceRecorder(sink)
        trace.set_sequence(41)
        trace.emit("merge", site="0x10", cycle=1)
        assert _events(sink)[0]["seq"] == 41
        assert trace.sequence == 42

    def test_observer_state_roundtrips_trace_seq(self):
        sink = io.StringIO()
        observer = Observer(trace=TraceRecorder(sink))
        observer.emit("merge", site="0x10", cycle=1)
        observer.counter("tracker.paths").inc(3)
        state = observer.export_state()
        assert state["trace_seq"] == 1

        resumed = Observer(trace=TraceRecorder(io.StringIO()))
        resumed.restore_state(state)
        assert resumed.trace.sequence == 1
        assert resumed.metrics.counter("tracker.paths").value == 3

    def test_restore_never_rewinds_sequence(self):
        observer = Observer(trace=TraceRecorder(io.StringIO()))
        observer.trace.set_sequence(10)
        observer.restore_state({"trace_seq": 4})
        assert observer.trace.sequence == 10


class TestLinter:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_recorder_output_lints_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as trace:
            trace.emit("merge", site="0x10", cycle=1)
            trace.emit(
                "step",
                cycle=1,
                phase="F",
                pc=0x10,
                reset=False,
                read=False,
                write=False,
                port_events=0,
                provenance_edges=12,
            )
            trace.emit(
                "provenance",
                edges=100,
                retained=100,
                capacity=1024,
                truncated=False,
                labels=["P1IN"],
            )
        assert lint_trace(path) == []

    def test_unparseable_line(self, tmp_path):
        path = self._write(tmp_path, ["{not json"])
        problems = lint_trace(path)
        assert len(problems) == 1
        assert "unparseable" in problems[0]

    def test_missing_reserved_fields(self, tmp_path):
        path = self._write(tmp_path, [json.dumps({"event": "merge"})])
        problems = lint_trace(path)
        assert any("'wall'" in problem for problem in problems)
        assert any("'v'" in problem for problem in problems)
        assert any("'seq'" in problem for problem in problems)

    def test_wrong_version(self, tmp_path):
        record = {
            "event": "merge", "wall": 0.0, "v": 1, "seq": 0,
            "site": "0x10", "cycle": 1,
        }
        path = self._write(tmp_path, [json.dumps(record)])
        assert any("version" in problem for problem in lint_trace(path))

    def test_non_monotonic_sequence(self, tmp_path):
        def record(seq):
            return json.dumps(
                {
                    "event": "merge", "wall": 0.0,
                    "v": TRACE_SCHEMA_VERSION, "seq": seq,
                    "site": "0x10", "cycle": 1,
                }
            )

        path = self._write(tmp_path, [record(5), record(5), record(4)])
        problems = lint_trace(path)
        assert len([p for p in problems if "seq" in p]) == 2

    def test_duplicated_seq_gets_its_own_message(self, tmp_path):
        def record(seq):
            return json.dumps(
                {
                    "event": "merge", "wall": 0.0,
                    "v": TRACE_SCHEMA_VERSION, "seq": seq,
                    "site": "0x10", "cycle": 1,
                }
            )

        path = self._write(tmp_path, [record(3), record(3)])
        problems = lint_trace(path)
        assert len(problems) == 1
        assert "duplicated seq 3" in problems[0]
        # No checkpoint boundary passed: the splice hint must not fire.
        assert "splice" not in problems[0]

    def test_seq_violation_after_checkpoint_names_the_splice(
        self, tmp_path
    ):
        """The classic resume bug: a checkpoint is saved at seq N, the
        resumed recorder restarts numbering, and the spliced trace
        repeats or rewinds seq.  The linter must say *why*, not just
        that the numbers went backwards."""
        def merge(seq):
            return json.dumps(
                {
                    "event": "merge", "wall": 0.0,
                    "v": TRACE_SCHEMA_VERSION, "seq": seq,
                    "site": "0x10", "cycle": 1,
                }
            )

        checkpoint = json.dumps(
            {
                "event": "checkpoint_saved", "wall": 0.1,
                "v": TRACE_SCHEMA_VERSION, "seq": 7,
                "path": "run.ckpt", "paths": 3, "cycles": 40,
                "reason": "interval",
            }
        )
        # Resume splice restarted at 0: rewound AND then duplicated.
        path = self._write(
            tmp_path, [merge(6), checkpoint, merge(0), merge(0)]
        )
        problems = [p for p in lint_trace(path) if "seq" in p]
        assert len(problems) == 2
        assert "not greater than previous 7" in problems[0]
        assert "checkpoint/resume splice" in problems[0]
        assert "duplicated seq 0" in problems[1]
        assert "checkpoint/resume splice" in problems[1]

    def test_interrupted_event_also_arms_the_splice_hint(self, tmp_path):
        interrupted = json.dumps(
            {
                "event": "interrupted", "wall": 0.1,
                "v": TRACE_SCHEMA_VERSION, "seq": 4,
                "reason": "SIGINT", "checkpoint": "run.ckpt",
                "paths": 2, "cycles": 10,
            }
        )
        merge = json.dumps(
            {
                "event": "merge", "wall": 0.2,
                "v": TRACE_SCHEMA_VERSION, "seq": 1,
                "site": "0x10", "cycle": 1,
            }
        )
        path = self._write(tmp_path, [interrupted, merge])
        problems = [p for p in lint_trace(path) if "seq" in p]
        assert len(problems) == 1
        assert "checkpoint/resume splice" in problems[0]

    def test_unknown_event_type(self, tmp_path):
        record = {
            "event": "nonsense", "wall": 0.0,
            "v": TRACE_SCHEMA_VERSION, "seq": 0,
        }
        path = self._write(tmp_path, [json.dumps(record)])
        assert any("unknown event" in problem for problem in lint_trace(path))

    def test_missing_and_undeclared_fields(self, tmp_path):
        record = {
            "event": "merge", "wall": 0.0,
            "v": TRACE_SCHEMA_VERSION, "seq": 0,
            "site": "0x10",  # missing: cycle
            "surprise": True,  # undeclared
        }
        path = self._write(tmp_path, [json.dumps(record)])
        problems = lint_trace(path)
        assert any("missing field 'cycle'" in problem for problem in problems)
        assert any(
            "undeclared field 'surprise'" in problem for problem in problems
        )

    def test_blank_lines_are_ignored(self, tmp_path):
        record = {
            "event": "merge", "wall": 0.0,
            "v": TRACE_SCHEMA_VERSION, "seq": 0,
            "site": "0x10", "cycle": 1,
        }
        path = self._write(tmp_path, ["", json.dumps(record), "  ", ""])
        assert lint_trace(path) == []

    def test_empty_trace_is_a_problem(self, tmp_path):
        """v3: zero events means a truncated or failed run."""
        path = self._write(tmp_path, [""])
        assert any("no events" in problem for problem in lint_trace(path))
        blank = self._write(tmp_path, ["", "  ", ""])
        assert any("no events" in problem for problem in lint_trace(blank))

    def test_schemas_cover_the_documented_events(self):
        # The v2 contract: provenance events exist, step declares the
        # optional provenance_edges field.
        assert "provenance" in EVENT_SCHEMAS
        assert "provenance_truncated" in EVENT_SCHEMAS
        assert "provenance_edges" in EVENT_SCHEMAS["step"]["optional"]
        # The v3 contract: timeline events exist, step declares the
        # optional timeline_frames field.
        assert "timeline" in EVENT_SCHEMAS
        assert "record" in EVENT_SCHEMAS
        assert "timeline_frames" in EVENT_SCHEMAS["step"]["optional"]
        assert "out" in EVENT_SCHEMAS["record"]["required"]
        # The v4 contract: progress events exist and carry the estimator
        # snapshot fields.
        assert TRACE_SCHEMA_VERSION == 4
        assert "progress" in EVENT_SCHEMAS
        assert "fraction" in EVENT_SCHEMAS["progress"]["required"]
        assert "eta_seconds" in EVENT_SCHEMAS["progress"]["optional"]


class TestCorrelationContext:
    def _record(self, seq, **extra):
        return {
            "event": "merge", "wall": 0.0,
            "v": TRACE_SCHEMA_VERSION, "seq": seq,
            "site": "0x10", "cycle": 1,
            **extra,
        }

    def test_recorder_stamps_context_on_every_event(self):
        sink = io.StringIO()
        trace = TraceRecorder(
            sink, context={"job_id": "j1", "attempt": 2, "run_id": "r9"}
        )
        trace.emit("merge", site="0x10", cycle=1)
        trace.emit("prune", site="0x10", node=2, cycle=1)
        for event in _events(sink):
            assert event["job_id"] == "j1"
            assert event["attempt"] == 2
            assert event["run_id"] == "r9"

    def test_set_context_rejects_unknown_fields(self):
        trace = TraceRecorder(io.StringIO())
        try:
            trace.set_context(pid=42)
        except ValueError as error:
            assert "pid" in str(error)
        else:
            raise AssertionError("unknown context field accepted")

    def test_none_drops_a_context_key(self):
        sink = io.StringIO()
        trace = TraceRecorder(sink, context={"job_id": "j1"})
        trace.set_context(job_id=None)
        trace.emit("merge", site="0x10", cycle=1)
        assert "job_id" not in _events(sink)[0]

    def test_correlated_trace_lints_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(
            path, context={"job_id": "j1", "attempt": 1, "run_id": "r1"}
        ) as trace:
            trace.emit("merge", site="0x10", cycle=1)
            trace.emit("widen", site="0x10", node=3, cycle=2)
        assert lint_trace(path) == []

    def test_context_change_mid_trace_is_flagged(self, tmp_path):
        lines = [
            json.dumps(self._record(0, job_id="j1", attempt=1)),
            json.dumps(self._record(1, job_id="j2", attempt=1)),
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        problems = lint_trace(path)
        assert len(problems) == 1
        assert "correlation context changed mid-trace" in problems[0]
        assert "job_id" in problems[0]

    def test_context_appearing_late_is_flagged(self, tmp_path):
        lines = [
            json.dumps(self._record(0)),
            json.dumps(self._record(1, job_id="j1")),
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        problems = lint_trace(path)
        assert any("correlation context" in p for p in problems)

    def test_context_fields_are_not_undeclared(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(self._record(0, job_id="j1")) + "\n")
        assert not any("undeclared" in p for p in lint_trace(path))


class TestProgressLint:
    def _progress(self, seq, **overrides):
        record = {
            "event": "progress", "wall": float(seq),
            "v": TRACE_SCHEMA_VERSION, "seq": seq,
            "paths": 1, "pending": 0, "cycles": 10,
            "merged_states": 0, "violations": 0, "fraction": 0.1,
        }
        record.update(overrides)
        return json.dumps(record)

    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_monotone_progress_lints_clean(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._progress(0, paths=1, cycles=10, fraction=0.1),
                self._progress(1, paths=3, cycles=50, fraction=0.4),
                self._progress(2, paths=3, cycles=50, fraction=0.4),
            ],
        )
        assert lint_trace(path) == []

    def test_regressing_counters_are_flagged(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._progress(0, paths=5, cycles=100, fraction=0.5),
                self._progress(1, paths=4, cycles=90, fraction=0.3),
            ],
        )
        problems = lint_trace(path)
        assert any("paths regressed" in p for p in problems)
        assert any("cycles regressed" in p for p in problems)
        assert any("fraction regressed" in p for p in problems)

    def test_pending_may_shrink(self, tmp_path):
        # pending is a frontier size, not a monotone counter.
        path = self._write(
            tmp_path,
            [
                self._progress(0, pending=9),
                self._progress(1, pending=2),
            ],
        )
        assert lint_trace(path) == []

    def test_optional_fields_are_declared(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._progress(
                    0,
                    eta_seconds=12.5,
                    rate_paths_per_s=4.0,
                    budget={"paths": 0.25},
                )
            ],
        )
        assert lint_trace(path) == []

    def test_missing_fraction_is_flagged(self, tmp_path):
        record = json.loads(self._progress(0))
        del record["fraction"]
        path = self._write(tmp_path, [json.dumps(record)])
        assert any(
            "missing field 'fraction'" in p for p in lint_trace(path)
        )


class TestTraceLintCli:
    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as trace:
            trace.emit("merge", site="0x10", cycle=1)
        assert main(["trace-lint", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_dirty_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "nonsense"}\n')
        assert main(["trace-lint", str(path)]) == 1
        output = capsys.readouterr().out
        assert "unknown event" in output
        assert "problem(s)" in output

    def test_missing_file_is_an_input_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-lint", str(tmp_path / "nope.jsonl")]) == 4

    def test_empty_file_exits_one_not_traceback(self, tmp_path, capsys):
        """Regression: an empty trace used to lint clean; it is the
        signature of a truncated or failed run and must exit 1."""
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-lint", str(path)]) == 1
        output = capsys.readouterr().out
        assert "no events" in output
        assert "problem(s)" in output

    def test_truncated_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as trace:
            trace.emit("merge", site="0x10", cycle=1)
            trace.emit("merge", site="0x20", cycle=2)
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # cut mid-record
        assert main(["trace-lint", str(path)]) == 1
        assert "unparseable" in capsys.readouterr().out

    def test_binary_file_exits_nonzero_not_traceback(self, tmp_path, capsys):
        """Regression: undecodable bytes raised UnicodeDecodeError
        straight through main() instead of the documented exit code."""
        from repro.cli import main

        path = tmp_path / "binary.jsonl"
        path.write_bytes(b"\xff\xfe\x00\x01 not json \x80\n")
        code = main(["trace-lint", str(path)])
        assert code == 1
        assert "problem(s)" in capsys.readouterr().out
