"""Prometheus text exposition: names, labels, cumulative buckets."""

import math

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry


def lines_of(text):
    return [line for line in text.splitlines() if line]


def samples(text, metric):
    """The (labels, value) samples of one metric family."""
    found = []
    for line in lines_of(text):
        if line.startswith("#"):
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        if name_and_labels.split("{")[0] == metric:
            found.append((name_and_labels, value))
    return found


class TestNameSanitization:
    def test_dotted_names_become_underscored(self):
        assert (
            sanitize_metric_name("service.jobs_submitted", "repro")
            == "repro_service_jobs_submitted"
        )

    def test_illegal_characters_are_replaced(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_gains_underscore(self):
        assert sanitize_metric_name("2fast").startswith("_")

    def test_colons_survive(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"

    def test_idempotent_on_legal_names(self):
        assert sanitize_metric_name("already_fine") == "already_fine"


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_value_renders_on_one_line(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_gauges=[
                ("tricky", 1, {"path": 'C:\\x\n"q"'}, "tricky labels")
            ],
        )
        tricky = [
            line for line in lines_of(text) if line.startswith("repro_tricky{")
        ]
        assert len(tricky) == 1
        assert '\\n' in tricky[0] and "\n" not in tricky[0].strip("\n")


class TestRendering:
    def test_counters_get_total_suffix_and_type(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs_submitted").inc(7)
        text = render_prometheus(registry)
        assert "# TYPE repro_service_jobs_submitted_total counter" in text
        assert (
            samples(text, "repro_service_jobs_submitted_total")[0][1] == "7"
        )

    def test_gauges_render_plain(self):
        registry = MetricsRegistry()
        registry.gauge("tree.peak").set(12)
        text = render_prometheus(registry)
        assert "# TYPE repro_tree_peak gauge" in text
        assert samples(text, "repro_tree_peak") == [("repro_tree_peak", "12")]

    def test_extra_gauges_share_one_family(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_gauges=[
                ("jobs_state", 2, {"state": "queued"}, "jobs by state"),
                ("jobs_state", 1, {"state": "running"}, "jobs by state"),
            ],
        )
        assert text.count("# TYPE repro_jobs_state gauge") == 1
        assert len(samples(text, "repro_jobs_state")) == 2

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        buckets = samples(text, "repro_latency_bucket")
        values = [int(value) for _, value in buckets]
        # registry stores disjoint {0.1: 2, 1: 1, 10: 1, overflow: 1};
        # the exposition must render the running total.
        assert values == [2, 3, 4, 5]
        assert values == sorted(values), "buckets must be cumulative"
        assert buckets[-1][0].endswith('{le="+Inf"}')
        assert samples(text, "repro_latency_count")[0][1] == "5"
        total = float(samples(text, "repro_latency_sum")[0][1])
        assert total == pytest.approx(55.6)

    def test_inf_bucket_equals_count_even_when_empty(self):
        registry = MetricsRegistry()
        registry.histogram("empty", bounds=(1.0,))
        text = render_prometheus(registry)
        assert samples(text, "repro_empty_bucket")[-1][1] == "0"
        assert samples(text, "repro_empty_count")[0][1] == "0"

    def test_none_renders_as_nan(self):
        text = render_prometheus(
            MetricsRegistry(), extra_gauges=[("hole", None, None, "")]
        )
        value = samples(text, "repro_hole")[0][1]
        assert math.isnan(float(value))


class TestNonFiniteSamples:
    """0.0.4 format obligations for inf/nan values and bounds."""

    def test_inf_gauge_renders_plus_inf(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_gauges=[("boundless", float("inf"), None, "")],
        )
        assert samples(text, "repro_boundless")[0][1] == "+Inf"

    def test_negative_inf_gauge_renders_minus_inf(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_gauges=[("floorless", float("-inf"), None, "")],
        )
        assert samples(text, "repro_floorless")[0][1] == "-Inf"

    def test_nan_gauge_renders_nan(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra_gauges=[("undefined", float("nan"), None, "")],
        )
        assert samples(text, "repro_undefined")[0][1] == "NaN"

    def test_nan_sum_renders_nan(self):
        state = {
            "histograms": {
                "weird": {
                    "bounds": [1.0],
                    "buckets": [1, 0],
                    "total": float("nan"),
                    "count": 1,
                }
            }
        }
        text = render_prometheus(state)
        assert samples(text, "repro_weird_sum")[0][1] == "NaN"

    def test_explicit_inf_bound_does_not_duplicate_the_final_bucket(self):
        # An explicit +Inf in the declared bounds used to render its own
        # le="+Inf" line *and* the mandatory final one -- a duplicate
        # sample every scraper rejects.
        state = {
            "histograms": {
                "latency": {
                    "bounds": [0.5, float("inf")],
                    "buckets": [2, 3, 0],
                    "total": 4.0,
                    "count": 5,
                }
            }
        }
        text = render_prometheus(state)
        buckets = samples(text, "repro_latency_bucket")
        inf_lines = [b for b in buckets if 'le="+Inf"' in b[0]]
        assert len(inf_lines) == 1
        # The explicit inf bound's occupancy still lands in +Inf.
        assert inf_lines[0][1] == "5"
        assert [value for _, value in buckets] == ["2", "5"]

    def test_nan_bound_is_folded_not_rendered(self):
        state = {
            "histograms": {
                "odd": {
                    "bounds": [1.0, float("nan")],
                    "buckets": [1, 2, 1],
                    "total": 3.0,
                    "count": 4,
                }
            }
        }
        text = render_prometheus(state)
        buckets = samples(text, "repro_odd_bucket")
        assert not any('le="NaN"' in b[0] for b in buckets)
        assert buckets[-1][0].endswith('{le="+Inf"}')
        assert buckets[-1][1] == "4"

    def test_accepts_export_state_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert render_prometheus(registry.export_state()) == (
            render_prometheus(registry)
        )

    def test_payload_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")

    def test_content_type_is_the_prometheus_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE
