"""Edge cases for obs.metrics histograms, profiler error spans, and
clock monotonicity under injected clock skew."""

import io
import json

import pytest

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.obs import (
    ManualClock,
    MetricsRegistry,
    Observer,
    Profiler,
    TraceRecorder,
    observe,
)
from repro.obs.metrics import Histogram
from repro.resilience.faults import FaultInjector, inject_faults


class TestHistogramEdges:
    def test_bucket_boundary_is_inclusive(self):
        histogram = Histogram("h", bounds=(0.1, 0.5))
        histogram.observe(0.1)  # lands in <=0.1, not the next bucket
        histogram.observe(0.5)
        snap = histogram.snapshot()
        assert snap["buckets"] == {"<=0.1": 1, "<=0.5": 1, "+inf": 0}

    def test_negative_values_land_in_first_bucket(self):
        histogram = Histogram("h", bounds=(0.1, 0.5))
        histogram.observe(-3.0)
        snap = histogram.snapshot()
        assert snap["buckets"]["<=0.1"] == 1
        assert snap["min"] == -3.0

    def test_overflow_bucket(self):
        histogram = Histogram("h", bounds=(0.1, 0.5))
        histogram.observe(1e18)
        snap = histogram.snapshot()
        assert snap["buckets"]["+inf"] == 1
        assert snap["max"] == 1e18

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None
        assert snap["max"] is None
        assert snap["mean"] is None

    def test_merge_requires_identical_bounds(self):
        left = Histogram("left", bounds=(0.1, 0.5))
        right = Histogram("right", bounds=(0.2, 0.5))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_of_empty_is_noop(self):
        left = Histogram("left", bounds=(0.1, 0.5))
        left.observe(0.3)
        left.merge(Histogram("empty", bounds=(0.1, 0.5)))
        snap = left.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.3 and snap["max"] == 0.3

    def test_merge_into_empty_adopts_extrema(self):
        left = Histogram("left", bounds=(0.1, 0.5))
        right = Histogram("right", bounds=(0.1, 0.5))
        right.observe(0.05)
        right.observe(0.4)
        left.merge(right)
        snap = left.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 0.05 and snap["max"] == 0.4

    def test_merge_two_empties_stays_empty(self):
        left = Histogram("left")
        left.merge(Histogram("right"))
        snap = left.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_merge_accumulates_counts_and_sum(self):
        left = Histogram("left", bounds=(0.5,))
        right = Histogram("right", bounds=(0.5,))
        left.observe(0.2)
        right.observe(0.9)
        left.merge(right)
        snap = left.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(1.1)
        assert snap["buckets"] == {"<=0.5": 1, "+inf": 1}

    def test_registry_export_restore_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("paths").inc(7)
        registry.gauge("peak").set(3)
        registry.histogram("density", bounds=(0.5,)).observe(0.2)
        state = registry.export_state()

        resumed = MetricsRegistry()
        resumed.restore_state(state)
        assert resumed.snapshot() == registry.snapshot()


class TestProfilerErrorSpans:
    def test_error_span_counts_and_keeps_timing(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with pytest.raises(RuntimeError):
            with profiler.span("explore"):
                clock.advance(2.0, cpu=1.0)
                raise RuntimeError("boom")
        snap = profiler.snapshot()
        assert snap["explore"]["calls"] == 1
        assert snap["explore"]["errors"] == 1
        assert snap["explore"]["wall_seconds"] == pytest.approx(2.0)
        assert profiler.depth == 0

    def test_stack_stays_balanced_after_nested_error(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with pytest.raises(RuntimeError):
            with profiler.span("repair"):
                with profiler.span("explore"):
                    raise RuntimeError("boom")
        assert profiler.depth == 0
        # a later span records under its own path, not a stale prefix
        with profiler.span("check"):
            clock.advance(1.0)
        assert "check" in profiler.snapshot()
        assert profiler.snapshot()["repair/explore"]["errors"] == 1

    def test_clean_span_has_zero_errors(self):
        profiler = Profiler(ManualClock())
        with profiler.span("check"):
            pass
        assert profiler.snapshot()["check"]["errors"] == 0

    def test_error_counts_roundtrip_through_state(self):
        clock = ManualClock()
        profiler = Profiler(clock)
        with pytest.raises(RuntimeError):
            with profiler.span("explore"):
                raise RuntimeError("boom")
        resumed = Profiler(ManualClock())
        resumed.restore_state(profiler.export_state())
        assert resumed.snapshot()["explore"]["errors"] == 1


RUNNABLE = """
.task sys trusted
    mov #21, r4
    add r4, r4
    mov r4, &P2OUT
    halt
"""


class TestClockUnderSkew:
    def test_trace_wall_and_seq_stay_monotonic_under_clock_skew(self):
        """Injected clock_skew jumps the SoC cycle counter; the obs
        clock (trace ``wall``) and sequence numbers must not jump
        backwards with it."""
        program = assemble(RUNNABLE, name="tiny")
        injector = FaultInjector(
            seed=3, rate=0.3, kinds=("clock_skew",), skew_cycles=50
        )
        sink = io.StringIO()
        observer = Observer(trace=TraceRecorder(sink))
        with observe(observer), inject_faults(injector):
            TaintTracker(
                program, default_policy(), max_cycles=50_000
            ).run()
        assert injector.injected, "no clock_skew fault ever fired"
        events = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
            if line
        ]
        assert any(
            event["event"] == "fault_injected" for event in events
        )
        walls = [event["wall"] for event in events]
        assert walls == sorted(walls)
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
