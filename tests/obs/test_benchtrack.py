"""The bench ledger and the noise-aware regression detector."""

import json

import pytest

from repro.obs.benchtrack import (
    append_history,
    detect_regressions,
    load_history,
    render_dashboard,
    select_benches,
)


def entries(name, values, metric="wall_seconds", **extra):
    return [
        {"bench": name, metric: value, "git_rev": f"rev{index}", **extra}
        for index, value in enumerate(values)
    ]


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        docs = entries("alpha", [1.0, 1.1])
        assert append_history(path, docs) == 2
        assert append_history(path, entries("alpha", [1.2])) == 1
        history = load_history(path)
        assert [e["wall_seconds"] for e in history] == [1.0, 1.1, 1.2]

    def test_load_missing_ledger_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(path, entries("alpha", [1.0]))
        with path.open("a") as handle:
            handle.write('{"bench": "alpha", "wall_se')  # kill -9 mid-write
        assert len(load_history(path)) == 1


class TestDetector:
    def test_clean_flat_trend_is_quiet(self):
        history = entries("alpha", [1.00, 1.01, 0.99, 1.00, 1.01])
        assert detect_regressions(history) == []

    def test_step_regression_is_confirmed(self):
        # A stable series then an injected 2x slowdown: the acceptance
        # scenario for the perf-smoke gate.
        history = entries("alpha", [1.00, 1.02, 0.98, 1.01, 2.0])
        findings = detect_regressions(history)
        assert len(findings) == 1
        finding = findings[0]
        assert finding["bench"] == "alpha"
        assert finding["metric"] == "wall_seconds"
        assert finding["confirmed"] is True
        assert finding["ratio"] == pytest.approx(2.0, rel=0.05)
        assert finding["git_rev"] == "rev4"

    def test_noisy_but_flat_series_is_quiet(self):
        # +/-40% swings throughout: the last point is within the series'
        # own noise envelope even though it exceeds the 30% threshold.
        values = [1.0, 1.6, 0.7, 1.5, 0.8, 1.6, 0.9, 1.5]
        assert detect_regressions(entries("noisy", values)) == []

    def test_throughput_drop_is_a_regression(self):
        history = entries(
            "sim", [500.0, 505.0, 498.0, 501.0, 240.0],
            metric="cycles_per_second",
        )
        findings = detect_regressions(history)
        assert [f["metric"] for f in findings] == ["cycles_per_second"]
        assert findings[0]["ratio"] > 2.0

    def test_short_history_is_never_flagged(self):
        assert detect_regressions(entries("young", [1.0, 9.0])) == []

    def test_series_are_independent(self):
        history = entries("alpha", [1.0, 1.0, 1.0, 1.0, 2.2]) + entries(
            "beta", [3.0, 3.0, 3.0, 3.0, 3.0]
        )
        findings = detect_regressions(history)
        assert [f["bench"] for f in findings] == ["alpha"]

    def test_threshold_is_respected(self):
        history = entries("alpha", [1.0, 1.0, 1.0, 1.0, 1.2])
        assert detect_regressions(history, threshold=0.30) == []
        assert len(detect_regressions(history, threshold=0.10)) == 1


class TestDashboard:
    def test_dashboard_is_self_contained_html(self):
        history = entries("alpha", [1.0, 1.1, 2.4, 1.0])
        html = render_dashboard(history, detect_regressions(history))
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html  # the sparklines
        assert "alpha" in html

    def test_regressed_series_is_highlighted(self):
        history = entries("alpha", [1.0, 1.0, 1.0, 1.0, 5.0])
        findings = detect_regressions(history)
        assert findings
        html = render_dashboard(history, findings)
        assert "regressed" in html
        assert "Confirmed regressions" in html


class TestSelection:
    def test_quick_set_exists_on_disk(self, tmp_path):
        from pathlib import Path

        repo_root = Path(__file__).parent.parent.parent
        quick = select_benches(repo_root, quick=True)
        assert len(quick) == 3
        assert all(module.exists() for module in quick)
        assert "bench_engine_event.py" in {m.name for m in quick}

    def test_only_filters_by_fragment(self):
        from pathlib import Path

        repo_root = Path(__file__).parent.parent.parent
        picked = select_benches(repo_root, only=["perf_attribution"])
        assert [m.name for m in picked] == ["bench_perf_attribution.py"]


class TestBenchCliCheck:
    def test_check_flag_fails_on_injected_slowdown(self, tmp_path, capsys):
        """End-to-end acceptance: the detector flags a 2x slowdown and
        ``repro bench --check`` exits 1 without re-running benches."""
        from repro.cli import main

        ledger = tmp_path / "BENCH_history.jsonl"
        append_history(
            ledger, entries("alpha", [1.00, 1.01, 0.99, 1.00, 2.0])
        )
        dashboard = tmp_path / "trends.html"
        code = main(
            [
                "bench",
                "--no-run",
                "--check",
                "--history",
                str(ledger),
                "--dashboard",
                str(dashboard),
                "--repo-root",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["regressions"][0]["bench"] == "alpha"
        assert dashboard.exists()

    def test_check_flag_passes_on_clean_ledger(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "BENCH_history.jsonl"
        append_history(
            ledger, entries("alpha", [1.00, 1.01, 0.99, 1.00, 1.01])
        )
        code = main(
            [
                "bench",
                "--no-run",
                "--check",
                "--history",
                str(ledger),
                "--dashboard",
                str(tmp_path / "trends.html"),
                "--repo-root",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "no confirmed regressions" in capsys.readouterr().out
