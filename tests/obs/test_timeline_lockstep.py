"""Lockstep fuzz: timeline reconstruction == fresh serial simulation.

The flight recorder stores deltas and keyframes; this harness proves the
compression is lossless for real workloads.  For every forking Table 1
workload (the Table 2 violators -- the programs whose exploration
restores snapshots, forks, merges and fast-forwards, i.e. everything
that could desynchronise a recorder), an analysis runs once with the
recorder armed, then runs again *fresh* with a raw capture hook that
copies the exact post-step code array every cycle.  ``Timeline.seek(n)``
must reproduce every raw frame bit for bit -- including when the first
recording was interrupted mid-run and resumed from a checkpoint.
"""

import hashlib

import numpy as np
import pytest

from repro.core import TaintTracker, default_policy
from repro.obs.timeline import TimelineRecorder, record_timeline
from repro.resilience import AnalysisInterrupted
from repro.workloads.registry import TABLE2_VIOLATORS, benchmark

FORKING_WORKLOADS = TABLE2_VIOLATORS


class RawCapture:
    """A timeline-shaped hook that stores uncompressed frame digests.

    Installed through the same ``get_timeline`` hot-path hook the real
    recorder uses, so it sees exactly what the recorder would see.
    """

    def __init__(self):
        self.hashes = []
        self.samples = {}

    def ensure_bound(self, circuit):
        pass

    def on_step(self, cycle, codes):
        self.hashes.append(
            (cycle, hashlib.sha256(codes.tobytes()).hexdigest())
        )
        # full arrays on a deterministic stride, for an arrays-equal
        # check that does not lean on the hash
        if len(self.hashes) % 37 == 1:
            self.samples[len(self.hashes) - 1] = codes.copy()


def _tracker(name, **kwargs):
    program = benchmark(name).service_program()
    return TaintTracker(program, policy=default_policy(), **kwargs)


def _raw_frames(name):
    """A fresh serial run's exact per-step code stream.

    Built outside the hook context: the tracker installs its own
    recorder only around :meth:`run`, so the power-on-reset steps taken
    while the substrate is constructed are recorded by neither side.
    """
    capture = RawCapture()
    tracker = _tracker(name)
    with record_timeline(capture):
        tracker.run()
    return capture


def _assert_lockstep(timeline, capture, context):
    assert timeline.num_frames == len(capture.hashes), context
    for frame in range(timeline.num_frames):
        cycle, digest = capture.hashes[frame]
        assert timeline.cycle_of(frame) == cycle, f"{context}: frame {frame}"
        reconstructed = timeline.seek(frame)
        assert (
            hashlib.sha256(reconstructed.tobytes()).hexdigest() == digest
        ), f"{context}: frame {frame} reconstruction diverged"
    for frame, codes in capture.samples.items():
        assert np.array_equal(timeline.seek(frame), codes), (
            f"{context}: sampled frame {frame}"
        )


@pytest.mark.parametrize("name", FORKING_WORKLOADS)
def test_seek_bit_identical_to_fresh_serial_run(name):
    recorder = TimelineRecorder(keyframe_interval=64)
    result = _tracker(name, timeline=recorder).run()
    timeline = recorder.to_timeline(result.violations)
    capture = _raw_frames(name)
    _assert_lockstep(timeline, capture, name)


@pytest.mark.parametrize("name", FORKING_WORKLOADS[:2])
def test_seek_bit_identical_across_checkpoint_resume(name):
    """An interrupted-and-resumed recording equals an uninterrupted one,
    frame for frame, and still equals the raw serial stream."""
    interrupted = _tracker(name, timeline=TimelineRecorder())
    original = interrupted._explore_path
    fired = []

    def wrapper(*args, **kwargs):
        original(*args, **kwargs)
        if not fired and interrupted.stats.paths >= 2:
            fired.append(True)
            interrupted.request_interrupt("test")

    interrupted._explore_path = wrapper
    try:
        interrupted.run()
        pytest.skip(f"{name} finished in under 2 paths; nothing to resume")
    except AnalysisInterrupted:
        pass
    payload = interrupted.export_checkpoint()
    assert payload["timeline"] is not None
    assert payload["timeline"]["frames"], "no frames before the interrupt"

    resumed_recorder = TimelineRecorder()
    resumed = _tracker(name, timeline=resumed_recorder)
    resumed.restore_checkpoint(payload)
    result = resumed.run()
    timeline = resumed_recorder.to_timeline(result.violations)
    _assert_lockstep(timeline, _raw_frames(name), f"{name} (resumed)")


def test_timeline_forces_serial_with_warning():
    """Documented restriction: the frame sequence *is* the timeline, so
    speculative out-of-order workers cannot ride along."""
    recorder = TimelineRecorder()
    tracker = _tracker("intAVG", timeline=recorder, jobs=4)
    with pytest.warns(RuntimeWarning, match="forces serial"):
        assert tracker._parallel_jobs() == 1
        result = tracker.run()
    reference = _tracker("intAVG").run()
    assert result.verdict == reference.verdict
    assert recorder.num_frames > 0
