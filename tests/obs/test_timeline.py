"""Unit coverage for the timeline flight recorder and scrub API."""

import numpy as np
import pytest

from repro.obs.timeline import (
    FRAME_DELTA,
    FRAME_KEY,
    Timeline,
    TimelineRecorder,
    load_timeline,
    read_timeline_header,
    resolve_markers,
    save_timeline,
)
from repro.resilience.errors import CheckpointError

NETS = 16


def _recorder(keyframe_interval=4, max_frames=1 << 20):
    recorder = TimelineRecorder(
        keyframe_interval=keyframe_interval, max_frames=max_frames
    )
    recorder.bind_raw(
        NETS,
        tuple(f"n{i}" for i in range(NETS)),
        {"word": (0, 1, 2, 3)},
    )
    return recorder


def _record_random(recorder, frames, seed=0):
    """Feed pseudo-random code churn; returns the reference arrays."""
    rng = np.random.RandomState(seed)
    codes = np.zeros(NETS, dtype=np.uint8)
    reference = []
    for cycle in range(frames):
        codes = codes.copy()
        for _ in range(rng.randint(0, 4)):
            codes[rng.randint(0, NETS)] = rng.choice([0, 1, 2, 3, 4, 5])
        recorder.on_step(cycle, codes)
        reference.append(codes.copy())
    return reference


class TestRecorder:
    def test_keyframe_cadence(self):
        recorder = _recorder(keyframe_interval=4)
        _record_random(recorder, 10)
        kinds = [kind for kind, _, _ in recorder._frames]
        assert kinds[0] == FRAME_KEY
        assert kinds[4] == FRAME_KEY
        assert kinds[8] == FRAME_KEY
        assert all(kind == FRAME_DELTA for kind in kinds[1:4])
        assert recorder.keyframes == 3

    def test_deltas_only_store_changes(self):
        recorder = _recorder(keyframe_interval=100)
        codes = np.zeros(NETS, dtype=np.uint8)
        recorder.on_step(0, codes)
        codes = codes.copy()
        codes[3] = 5
        recorder.on_step(1, codes)
        kind, _, (changed, values) = recorder._frames[1]
        assert kind == FRAME_DELTA
        assert list(changed) == [3]
        assert list(values) == [5]

    def test_identical_index_sets_are_interned(self):
        recorder = _recorder(keyframe_interval=1000)
        codes = np.zeros(NETS, dtype=np.uint8)
        recorder.on_step(0, codes)
        for cycle in range(1, 6):
            codes = codes.copy()
            codes[7] = cycle % 6
            recorder.on_step(cycle, codes)
        arrays = {
            id(data[0])
            for kind, _, data in recorder._frames
            if kind == FRAME_DELTA
        }
        assert len(arrays) == 1  # one shared index vector

    def test_max_frames_truncates_without_error(self):
        recorder = _recorder(max_frames=5)
        _record_random(recorder, 9)
        assert recorder.num_frames == 5
        assert recorder.truncated
        assert recorder.dropped == 4
        assert recorder.snapshot()["truncated"] is True

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder(keyframe_interval=0)
        with pytest.raises(ValueError):
            TimelineRecorder(max_frames=0)

    def test_export_restore_continues_bit_identically(self):
        original = _recorder()
        reference = _record_random(original, 7)
        resumed = TimelineRecorder()
        resumed.restore_state(original.export_state())
        tail = np.array(reference[-1], dtype=np.uint8)
        for cycle in range(7, 12):
            tail = tail.copy()
            tail[cycle % NETS] ^= 1
            original.on_step(cycle, tail)
            resumed.on_step(cycle, tail)
        a, b = original.to_timeline(), resumed.to_timeline()
        assert a.num_frames == b.num_frames
        for frame in range(a.num_frames):
            assert np.array_equal(a.seek(frame), b.seek(frame)), frame


class TestTimelineQueries:
    def _timeline(self, frames=20, keyframe_interval=4):
        recorder = _recorder(keyframe_interval=keyframe_interval)
        reference = _record_random(recorder, frames)
        return recorder.to_timeline(), reference

    def test_seek_matches_reference_every_frame(self):
        timeline, reference = self._timeline()
        for frame in range(len(reference)):
            assert np.array_equal(timeline.seek(frame), reference[frame])

    def test_seek_random_order_and_backwards(self):
        timeline, reference = self._timeline()
        for frame in (19, 2, 11, 11, 0, 18, 5):
            assert np.array_equal(
                timeline.seek(frame), reference[frame]
            ), frame

    def test_seek_returns_a_copy(self):
        timeline, reference = self._timeline()
        codes = timeline.seek(3)
        codes[:] = 99
        assert np.array_equal(timeline.seek(3), reference[3])

    def test_seek_out_of_range(self):
        timeline, _ = self._timeline()
        with pytest.raises(IndexError, match="out of range"):
            timeline.seek(timeline.num_frames)
        assert np.array_equal(
            timeline.seek(-1), timeline.seek(timeline.num_frames - 1)
        )

    def test_net_history_tracks_one_net(self):
        timeline, reference = self._timeline()
        history = timeline.net_history(5, 2, 9)
        assert [entry[0] for entry in history] == list(range(2, 10))
        for frame, cycle, value, taint in history:
            code = int(reference[frame][5])
            assert (value, taint) == (code >> 1, code & 1)
            assert cycle == frame  # test feed uses cycle == frame

    def test_net_history_bad_net(self):
        timeline, _ = self._timeline()
        with pytest.raises(IndexError, match="net"):
            timeline.net_history(NETS + 1)

    def test_first_tainted(self):
        recorder = _recorder()
        codes = np.zeros(NETS, dtype=np.uint8)
        recorder.on_step(0, codes)
        codes = codes.copy()
        codes[2] = 2  # value 1, untainted
        recorder.on_step(1, codes)
        codes = codes.copy()
        codes[2] = 3  # tainted
        recorder.on_step(2, codes)
        timeline = recorder.to_timeline()
        assert timeline.first_tainted(2) == (2, 2)
        assert timeline.first_tainted(9) is None

    def test_taint_frontier_names_newly_tainted(self):
        recorder = _recorder()
        codes = np.zeros(NETS, dtype=np.uint8)
        codes[0] = 1
        recorder.on_step(0, codes)
        codes = codes.copy()
        codes[4] = 1
        recorder.on_step(1, codes)
        recorder.on_step(2, codes)
        timeline = recorder.to_timeline()
        assert list(timeline.taint_frontier(0)) == [0]
        assert list(timeline.taint_frontier(1)) == [4]
        assert list(timeline.taint_frontier(2)) == []

    def test_tainted_nets_and_density_agree_with_seek(self):
        timeline, reference = self._timeline()
        density = timeline.taint_density()
        for frame in range(timeline.num_frames):
            tainted = np.nonzero(reference[frame] & 1)[0]
            assert np.array_equal(timeline.tainted_nets(frame), tainted)
            assert density[frame] == pytest.approx(len(tainted) / NETS)

    def test_port_word_and_lanes(self):
        recorder = _recorder()
        codes = np.zeros(NETS, dtype=np.uint8)
        codes[0] = 2  # bit0 = 1
        codes[1] = 3  # bit1 = 1, tainted
        codes[2] = 4  # bit2 = X
        recorder.on_step(0, codes)
        timeline = recorder.to_timeline()
        assert timeline.port_word(0, "word") == (0b0011, 0b0100, 0b0010)
        assert timeline.port_lanes(["word", "missing"]) == {
            "word": [(0b0011, 0b0100, 0b0010)]
        }
        with pytest.raises(KeyError, match="unknown port"):
            timeline.port_word(0, "nope")

    def test_cycle_translation(self):
        timeline, _ = self._timeline(frames=6)
        assert timeline.cycle_of(3) == 3
        assert timeline.frames_at_cycle(3) == [3]
        with pytest.raises(IndexError, match="no frame"):
            timeline.latest_frame_at_cycle(99)


class TestMarkers:
    class _FakeViolation:
        def __init__(self, cycle):
            self.cycle = cycle
            self.kind = "tainted_write_untainted_memory"
            self.condition = 2
            self.address = 0x200
            self.task = "app"

    def test_marker_resolves_to_latest_frame_for_cycle(self):
        frames = [
            (FRAME_KEY, 0, np.zeros(4, dtype=np.uint8)),
            (FRAME_DELTA, 1, (np.array([0]), np.array([1], dtype=np.uint8))),
            # the tracker revisits cycle 1 on a restored path:
            (FRAME_DELTA, 1, (np.array([0]), np.array([3], dtype=np.uint8))),
        ]
        markers = resolve_markers(frames, [self._FakeViolation(1)])
        assert len(markers) == 1
        assert markers[0].frame == 2
        assert markers[0].kind == "tainted_write_untainted_memory"

    def test_unrecorded_cycle_is_skipped(self):
        frames = [(FRAME_KEY, 0, np.zeros(4, dtype=np.uint8))]
        assert resolve_markers(frames, [self._FakeViolation(7)]) == []


class TestFileRoundTrip:
    def test_save_load_bit_identical(self, tmp_path):
        recorder = _recorder()
        reference = _record_random(recorder, 15)
        path = tmp_path / "run.timeline"
        save_timeline(path, recorder, meta={"workload": "unit"})
        header = read_timeline_header(path)
        assert header["frames"] == 15
        assert header["workload"] == "unit"
        loaded = load_timeline(path)
        assert loaded.num_nets == NETS
        assert loaded.net_names[3] == "n3"
        assert loaded.port_nets["word"] == (0, 1, 2, 3)
        for frame in range(15):
            assert np.array_equal(loaded.seek(frame), reference[frame])

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.timeline"
        path.write_bytes(b"not a timeline at all")
        with pytest.raises(CheckpointError) as excinfo:
            load_timeline(path)
        assert excinfo.value.code == "TIMELINE_CORRUPT"

    def test_checkpoint_file_rejected_as_timeline(self, tmp_path):
        """The shared codec still tells the two formats apart."""
        from repro.resilience.checkpoint import write_checkpoint

        path = tmp_path / "run.ckpt"
        write_checkpoint(path, "digest", {"anything": 1})
        with pytest.raises(CheckpointError) as excinfo:
            read_timeline_header(path)
        assert excinfo.value.code == "TIMELINE_CORRUPT"

    def test_truncated_payload_rejected(self, tmp_path):
        recorder = _recorder()
        _record_random(recorder, 8)
        path = tmp_path / "run.timeline"
        save_timeline(path, recorder)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError) as excinfo:
            load_timeline(path)
        assert excinfo.value.code == "TIMELINE_CORRUPT"


class TestProcessHook:
    def test_install_and_context_manager(self):
        from repro.obs.timeline import (
            get_timeline,
            install_timeline,
            record_timeline,
        )

        assert get_timeline() is None
        recorder = _recorder()
        with record_timeline(recorder) as active:
            assert active is recorder
            assert get_timeline() is recorder
        assert get_timeline() is None
        previous = install_timeline(recorder)
        assert previous is None
        assert install_timeline(None) is recorder
