"""Retry classification and deterministic backoff."""

from repro.service.retry import Outcome, RetryPolicy


class TestBackoff:
    def test_deterministic_per_job_and_attempt(self):
        policy = RetryPolicy()
        assert policy.backoff_seconds("job-a", 1) == policy.backoff_seconds(
            "job-a", 1
        )
        # Distinct jobs / attempts decorrelate.
        assert policy.backoff_seconds("job-a", 1) != policy.backoff_seconds(
            "job-b", 1
        )
        assert policy.backoff_seconds("job-a", 1) != policy.backoff_seconds(
            "job-a", 2
        )

    def test_exponential_with_jitter_bounds(self):
        policy = RetryPolicy(base_seconds=1.0, cap_seconds=60.0, jitter=0.25)
        for attempt in range(1, 6):
            nominal = 1.0 * 2 ** (attempt - 1)
            delay = policy.backoff_seconds("j", attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_cap_bounds_the_nominal_delay(self):
        policy = RetryPolicy(base_seconds=1.0, cap_seconds=4.0, jitter=0.0)
        assert policy.backoff_seconds("j", 10) == 4.0

    def test_zero_jitter_is_exactly_exponential(self):
        policy = RetryPolicy(base_seconds=0.5, cap_seconds=100.0, jitter=0.0)
        assert [policy.backoff_seconds("j", a) for a in (1, 2, 3, 4)] == [
            0.5,
            1.0,
            2.0,
            4.0,
        ]


class TestClassify:
    def setup_method(self):
        self.policy = RetryPolicy(max_attempts=3)

    def test_verdict_exit_codes_finish_the_job(self):
        for code, verdict in ((0, "secure"), (1, "insecure"), (3, "inconclusive")):
            outcome = self.policy.classify(
                attempts=1, exit_code=code, result_verdict=verdict
            )
            assert outcome == Outcome(
                "verdict",
                verdict=verdict,
                exit_code=code,
                reason=f"verdict {verdict}",
            )

    def test_verdict_exit_without_result_document_retries(self):
        # A worker interpreter that dies before analysis starts (e.g.
        # ImportError) exits 1 with no result document; recording that
        # as "insecure" would be a false safety verdict.
        outcome = self.policy.classify(attempts=1, exit_code=1)
        assert outcome.kind == "retry"
        assert "unexplained exit 1" in outcome.reason

    def test_verdict_exit_with_mismatched_document_retries(self):
        outcome = self.policy.classify(
            attempts=1, exit_code=0, result_verdict="insecure"
        )
        assert outcome.kind == "retry"

    def test_crash_is_always_retriable(self):
        outcome = self.policy.classify(
            attempts=1, exit_code=None, crashed=True, reason="killed by SIGKILL"
        )
        assert outcome.kind == "retry"
        assert outcome.reason == "killed by SIGKILL"

    def test_crash_with_verdict_like_code_still_retries(self):
        # A killed worker's status is untrustworthy even if it looks
        # like a verdict code.
        outcome = self.policy.classify(attempts=1, exit_code=0, crashed=True)
        assert outcome.kind == "retry"

    def test_typed_error_follows_taxonomy_retriable_flag(self):
        retriable_doc = {"code": "SIMULATION", "retriable": True, "exit_code": 6}
        fatal_doc = {"code": "INPUT", "retriable": False, "exit_code": 4}
        assert (
            self.policy.classify(
                attempts=1, exit_code=6, error=retriable_doc
            ).kind
            == "retry"
        )
        outcome = self.policy.classify(attempts=1, exit_code=6, error=fatal_doc)
        assert outcome.kind == "fail"
        # The taxonomy exit code is preserved verbatim.
        assert outcome.exit_code == 4
        assert "INPUT" in outcome.reason

    def test_interrupt_exit_is_retriable(self):
        outcome = self.policy.classify(attempts=1, exit_code=130)
        assert outcome.kind == "retry"
        assert outcome.exit_code == 130

    def test_unexplained_exit_is_retriable(self):
        outcome = self.policy.classify(attempts=1, exit_code=7)
        assert outcome.kind == "retry"
        assert "unexplained exit 7" in outcome.reason

    def test_attempt_cap_turns_retry_into_fail(self):
        outcome = self.policy.classify(
            attempts=3, exit_code=None, crashed=True
        )
        assert outcome.kind == "fail"
        assert "3 attempt(s) exhausted" in outcome.reason

    def test_verdict_wins_even_at_attempt_cap(self):
        outcome = self.policy.classify(
            attempts=3, exit_code=1, result_verdict="insecure"
        )
        assert outcome.kind == "verdict"
        assert outcome.verdict == "insecure"

    def test_per_job_max_attempts_overrides_policy_default(self):
        # The journaled per-job cap is authoritative over the policy's.
        tighter = self.policy.classify(
            attempts=2, exit_code=None, crashed=True, max_attempts=2
        )
        assert tighter.kind == "fail"
        looser = self.policy.classify(
            attempts=3, exit_code=None, crashed=True, max_attempts=5
        )
        assert looser.kind == "retry"
