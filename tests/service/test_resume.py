"""Satellite acceptance: a SIGKILLed worker's retry resumes from the
job checkpoint and produces a *bit-identical* verdict document.

The reference run executes the same worker entry point, undisturbed, in
its own subprocess.  The chaos run lets the service launch the job, has
the :class:`ChaosMonkey` SIGKILL the worker once a checkpoint exists,
and compares the retried job's report against the reference with only
the run-identity fields (wall clock, job id, resumed flag) stripped.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.service import ChaosPlan, soak

from tests.service.conftest import MANYPATHS, canon, make_service, reap

REPO = Path(__file__).resolve().parents[2]


def reference_document(tmp_path, source, budget, checkpoint_every, name):
    """The undisturbed verdict document for *source*, produced by the
    same worker module the service spawns."""
    art = tmp_path / "reference"
    art.mkdir()
    spec = {
        "job_id": "reference",
        "name": name,
        "source": source,
        "policy": "untrusted",
        "max_cycles": 1_000_000,
        "budget": budget,
        "checkpoint": str(art / "checkpoint.ckpt"),
        "checkpoint_every": checkpoint_every,
        "heartbeat": str(art / "heartbeat"),
        "heartbeat_interval": 0.5,
        "result": str(art / "result.json"),
        "fault_injection": None,
        "spec_path": str(art / "spec.json"),
    }
    (art / "spec.json").write_text(json.dumps(spec))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.service.worker",
            "--spec",
            str(art / "spec.json"),
        ],
        env=env,
        capture_output=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr.decode()
    return json.loads((art / "result.json").read_text())


def test_sigkilled_attempt_resumes_bit_identically(tmp_path):
    service = make_service(
        tmp_path / "svc", workers=1, checkpoint_every=4
    )
    try:
        reference = reference_document(
            tmp_path,
            MANYPATHS,
            dict(service.config.default_budget),
            service.config.checkpoint_every,
            name="kill-me",
        )
        assert reference["verdict"] == "secure"
        assert not reference["resumed"]

        plan = ChaosPlan(
            seed=0, rate=1.0, max_kills=1, require_checkpoint=True
        )
        report = soak(
            service,
            [{"source": MANYPATHS, "name": "kill-me"}],
            plan=plan,
            timeout=300.0,
        )
        assert report.kills == 1
        assert report.verdicts == {"secure": 1}

        (record,) = service.jobs.values()
        # One crash, one successful retry -- and the crash cost an
        # attempt (unlike daemon-restart recovery, the worker was lost).
        assert record.attempts == 2
        retry_notes = [
            h["note"]
            for h in record.history
            if h["state"] == "retrying"
        ]
        assert len(retry_notes) == 1
        assert "chaos SIGKILL" in retry_notes[0]

        document = service.report(record.job_id)
        # The retried attempt genuinely resumed from the checkpoint...
        assert document["resumed"] is True
        # ...and the verdict document is bit-identical to the
        # undisturbed run once run-identity fields are stripped.
        assert canon(document) == canon(reference)
    finally:
        reap(service)


def test_chaos_kill_without_checkpoint_still_converges(tmp_path):
    """A worker killed *before* its first checkpoint retries from
    scratch -- slower, but the verdict is the same."""
    service = make_service(
        tmp_path / "svc",
        workers=1,
        # Checkpoint far beyond the path count: no checkpoint ever
        # exists, so the kill hits a cold job.
        checkpoint_every=10_000,
    )
    try:
        plan = ChaosPlan(
            seed=1, rate=1.0, max_kills=1, require_checkpoint=False
        )
        report = soak(
            service,
            [{"source": MANYPATHS, "name": "cold-kill"}],
            plan=plan,
            timeout=300.0,
        )
        assert report.kills == 1
        assert report.verdicts == {"secure": 1}
        (record,) = service.jobs.values()
        document = service.report(record.job_id)
        assert document["resumed"] is False
        assert record.attempts == 2
    finally:
        reap(service)
