"""GET /metrics, GET /statsz and the jobs --stats view of a live daemon."""

import urllib.request

import pytest

from repro.service import ServiceClient

from tests.service.conftest import (
    TINY_SECURE,
    drive,
    make_service,
    reap,
)


@pytest.fixture
def served(tmp_path):
    service = make_service(tmp_path, port=0)
    url = service.start_server()
    yield service, ServiceClient(url)
    reap(service)


def parse_exposition(text):
    """Minimal format check + sample map; raises on malformed lines."""
    values = {}
    for line in text.splitlines():
        if not line:
            raise AssertionError("blank line inside exposition payload")
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            continue
        if line.startswith("# HELP "):
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        sample, value = line.rsplit(" ", 1)
        float(value)  # every sample value must parse
        values[sample] = value
    return values


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, served):
        service, client = served
        client.submit(source=TINY_SECURE, name="telemetry-job")
        with urllib.request.urlopen(f"{client.url}/metrics") as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        values = parse_exposition(body)
        assert values["repro_service_jobs_submitted_total"] == "1"
        assert values["repro_service_backlog"] == "1"
        assert (
            values['repro_service_jobs_state{state="queued"}'] == "1"
        )
        assert values["repro_service_submit_fsync_seconds_count"] == "1"
        assert (
            values['repro_service_submit_fsync_seconds_bucket{le="+Inf"}']
            == "1"
        )

    def test_scrape_covers_the_full_job_lifecycle(self, served):
        service, client = served
        job_id = client.submit(source=TINY_SECURE)["id"]
        drive(service, [service.get(job_id)])
        values = parse_exposition(client.metrics_text())
        assert values["repro_service_jobs_finished_total"] == "1"
        assert values['repro_service_jobs_state{state="done"}'] == "1"
        assert values["repro_service_backlog"] == "0"
        # The terminal transition must have recorded a turnaround.
        assert values["repro_service_turnaround_seconds_count"] == "1"
        assert float(values["repro_service_turnaround_seconds_sum"]) > 0

    def test_histogram_buckets_are_cumulative_on_the_wire(self, served):
        service, client = served
        for _ in range(3):
            client.submit(source=TINY_SECURE)
        values = parse_exposition(client.metrics_text())
        buckets = [
            int(value)
            for sample, value in values.items()
            if sample.startswith("repro_service_submit_fsync_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3


class TestStatsz:
    def test_statsz_mirrors_metrics(self, served):
        service, client = served
        client.submit(source=TINY_SECURE)
        stats = client.stats()
        assert stats["health"]["backlog"] == 1
        assert stats["metrics"]["counters"]["service.jobs_submitted"] == 1
        assert (
            stats["metrics"]["histograms"]["service.submit_fsync_seconds"][
                "count"
            ]
            == 1
        )


class TestJobsStatsCli:
    def test_jobs_stats_prints_the_live_snapshot(self, served, capsys):
        from repro.cli import main

        service, client = served
        client.submit(source=TINY_SECURE, name="cli-stats-job")
        code = main(["jobs", "--stats", "--url", client.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "backlog 1/" in out
        assert "service.jobs_submitted" in out
        assert "service.submit_fsync_seconds" in out
        assert "queued" in out
