"""Live progress: heartbeat documents, ingestion, SSE, ``repro watch``.

Covers the v4 progress pipeline end to end against real worker
subprocesses: the JSON heartbeat (and its bare-touch backward
compatibility), the daemon's per-tick ingestion and fleet aggregation,
the ``GET /jobs/<id>/events`` stream, and the ``repro watch`` CLI.
"""

import json
import subprocess
import threading
import time
from pathlib import Path

import pytest

from repro.obs import lint_trace
from repro.service import ServiceClient
from repro.service.supervisor import WorkerHandle, parse_heartbeat

from tests.service.conftest import (
    MANYPATHS,
    TINY_SECURE,
    drive,
    make_service,
    reap,
)


class TestParseHeartbeat:
    """Backward compatibility: liveness must never depend on the parse."""

    def test_missing_file_is_none(self, tmp_path):
        assert parse_heartbeat(tmp_path / "absent") is None

    def test_bare_touch_heartbeat_is_none(self, tmp_path):
        # The pre-v4 worker contract: an empty file, mtime = liveness.
        path = tmp_path / "heartbeat"
        path.touch()
        assert parse_heartbeat(path) is None

    def test_whitespace_only_is_none(self, tmp_path):
        path = tmp_path / "heartbeat"
        path.write_text("\n  \n")
        assert parse_heartbeat(path) is None

    def test_torn_json_is_none(self, tmp_path):
        path = tmp_path / "heartbeat"
        path.write_text('{"v": 1, "job_id": "j0001')
        assert parse_heartbeat(path) is None

    def test_non_object_json_is_none(self, tmp_path):
        path = tmp_path / "heartbeat"
        path.write_text("[1, 2, 3]\n")
        assert parse_heartbeat(path) is None

    def test_valid_document_parses(self, tmp_path):
        path = tmp_path / "heartbeat"
        document = {"v": 1, "job_id": "j1", "progress": None}
        path.write_text(json.dumps(document))
        assert parse_heartbeat(path) == document

    def test_bare_touch_still_drives_liveness(self, tmp_path):
        # A downlevel worker's empty heartbeat keeps the supervisor's
        # freshness check working while progress stays None.
        path = tmp_path / "heartbeat"
        path.touch()
        process = subprocess.Popen(["sleep", "30"])
        try:
            handle = WorkerHandle(
                job_id="j1",
                process=process,
                spec={},
                heartbeat_path=path,
                started_at=time.monotonic(),
                started_wall=time.time(),
            )
            assert handle.heartbeat_age() < 5.0
            assert handle.progress() is None
        finally:
            process.kill()
            process.wait()


class TestIngestionAndFleet:
    def test_running_job_gets_progress_on_the_record(self, tmp_path):
        service = make_service(
            tmp_path / "svc", heartbeat_interval=0.05, workers=1
        )
        try:
            record = service.submit(source=MANYPATHS, name="slow")
            seen = []
            deadline = time.monotonic() + 180.0
            while not record.terminal:
                if time.monotonic() > deadline:
                    raise TimeoutError("job never finished")
                service.tick()
                if record.progress:
                    seen.append(dict(record.progress))
                time.sleep(service.config.poll_interval)
            assert seen, "no progress was ever ingested"
            latest = seen[-1]
            assert latest["attempt"] == 1
            assert latest["run_id"]
            assert latest["paths"] >= 1
            assert 0.0 <= latest["fraction"] <= 1.0
            fractions = [s["fraction"] for s in seen]
            assert fractions == sorted(fractions)
            # The last ingested progress survives on the terminal record
            # (useful history); the listing carries it too.
            assert record.summary()["state"] == "done"
            assert record.summary()["progress"] == record.progress
        finally:
            reap(service)

    def test_fleet_progress_shape_when_idle(self, tmp_path):
        service = make_service(tmp_path / "svc")
        try:
            fleet = service.fleet_progress()
            assert fleet == {
                "running": {},
                "paths_in_flight": 0,
                "oldest_running_job_age_seconds": 0.0,
            }
            assert service.stats()["progress"] == fleet
        finally:
            reap(service)

    def test_fleet_gauges_in_prometheus_exposition(self, tmp_path):
        service = make_service(tmp_path / "svc")
        try:
            text = service.metrics_text()
            assert "repro_service_paths_in_flight 0" in text
            assert "repro_service_oldest_running_job_age_seconds 0" in text
        finally:
            reap(service)

    def test_mismatched_job_id_heartbeat_is_ignored(self, tmp_path):
        service = make_service(tmp_path / "svc", workers=1)
        try:
            record = service.submit(source=MANYPATHS, name="slow")
            # Launch, then forge a heartbeat from a *different* job id
            # (an artifact-dir reuse gone wrong must not cross-pollute).
            deadline = time.monotonic() + 60.0
            while record.job_id not in service.supervisor.live:
                if time.monotonic() > deadline:
                    raise TimeoutError("job never launched")
                service.tick()
                time.sleep(0.01)
            handle = service.supervisor.live[record.job_id]
            handle.heartbeat_path.write_text(
                json.dumps(
                    {
                        "v": 1,
                        "job_id": "j999999-other",
                        "progress": {"paths": 999},
                    }
                )
            )
            service._ingest_progress()
            assert record.progress is None
        finally:
            reap(service)


def _frames_of(client, job_id, frames, errors):
    try:
        for event, document in client.watch(job_id, timeout=30.0):
            frames.append((event, document))
    except Exception as error:  # pragma: no cover - surfaced by the test
        errors.append(error)


@pytest.fixture
def served(tmp_path):
    service = make_service(
        tmp_path / "svc", port=0, heartbeat_interval=0.05, workers=1
    )
    url = service.start_server()
    yield service, ServiceClient(url)
    reap(service)


class TestEventStream:
    def _stream(self, service, client, source, name):
        record = service.submit(source=source, name=name)
        frames, errors = [], []
        consumer = threading.Thread(
            target=_frames_of,
            args=(client, record.job_id, frames, errors),
            daemon=True,
        )
        consumer.start()
        drive(service, [record])
        consumer.join(timeout=60.0)
        assert not consumer.is_alive(), "stream never ended"
        assert not errors, errors
        return record, frames

    def test_stream_replays_states_and_ends_with_summary(self, served):
        service, client = served
        record, frames = self._stream(
            service, client, TINY_SECURE, "quick"
        )
        kinds = [kind for kind, _ in frames]
        assert kinds[-1] == "end"
        states = [
            doc["state"] for kind, doc in frames if kind == "state"
        ]
        assert states[0] == "running" or "queued" in states
        assert "done" in states
        end = frames[-1][1]
        assert end["id"] == record.job_id
        assert end["state"] == "done"
        assert end["verdict"] == "secure"
        assert end["exit_code"] == 0

    def test_stream_carries_monotone_progress(self, served):
        service, client = served
        record, frames = self._stream(
            service, client, MANYPATHS, "slow"
        )
        progress = [doc for kind, doc in frames if kind == "progress"]
        assert progress, "no progress frames on a multi-second job"
        for doc in progress:
            assert doc["job_id"] == record.job_id
            assert doc["attempt"] == 1
        fractions = [doc["fraction"] for doc in progress]
        assert fractions == sorted(fractions)
        paths = [doc["paths"] for doc in progress]
        assert paths == sorted(paths)

    def test_worker_trace_is_correlated_and_lints_clean(self, served):
        service, client = served
        record, _ = self._stream(service, client, MANYPATHS, "traced")
        trace_path = Path(record.artifacts["trace"])
        assert trace_path.exists()
        assert lint_trace(trace_path) == []
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        assert events
        assert all(e["job_id"] == record.job_id for e in events)
        assert all(e["attempt"] == record.attempts for e in events)
        run_ids = {e["run_id"] for e in events}
        assert len(run_ids) == 1
        assert any(e["event"] == "progress" for e in events)

    def test_events_for_unknown_job_is_404(self, served):
        _, client = served
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            for _ in client.events("j999999-nope"):
                break
        assert excinfo.value.code == 404


class TestWatchCli:
    def test_watch_json_streams_frames_and_exits_with_verdict(
        self, served, capsys
    ):
        from repro.cli import main

        service, client = served
        record = service.submit(source=TINY_SECURE, name="watched")
        driver = threading.Thread(
            target=drive, args=(service, [record]), daemon=True
        )
        driver.start()
        code = main(
            ["watch", record.job_id, "--url", client.url, "--json"]
        )
        driver.join(timeout=60.0)
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        kinds = [line["event"] for line in lines]
        assert kinds[-1] == "end"
        assert lines[-1]["data"]["verdict"] == "secure"

    def test_watch_plain_renders_states_and_summary(self, served, capsys):
        from repro.cli import main

        service, client = served
        record = service.submit(source=TINY_SECURE, name="watched")
        driver = threading.Thread(
            target=drive, args=(service, [record]), daemon=True
        )
        driver.start()
        code = main(["watch", record.job_id, "--url", client.url])
        driver.join(timeout=60.0)
        assert code == 0
        output = capsys.readouterr().out
        assert f"job {record.job_id}:" in output
        assert "verdict secure" in output
