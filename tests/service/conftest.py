"""Shared fixtures for the analysis-service suite.

The suite spawns *real* worker subprocesses (the whole point is process
supervision), so the workload sources are chosen for speed: TINY is a
single-path secure program, MANYPATHS forks 21 paths -- long enough that
a checkpoint exists before the verdict, which the kill/resume tests
depend on, while still finishing in a few seconds.
"""

import time

import pytest

from repro.service import AnalysisService, ServiceConfig

#: Single path, no tainted reads: verdict ``secure`` almost instantly.
TINY_SECURE = """\
.task sys trusted
start:
    mov #1, r4
    mov r4, &P2OUT
    halt
"""

#: Tainted input (P1IN) reaches a sink that must stay clean (P4OUT):
#: verdict ``insecure``, single path.
TINY_INSECURE = """\
.task sys trusted
start:
    mov &P1IN, r4
    mov r4, &P4OUT
    halt
"""

#: Four tainted branches -> 21 explored paths (a few seconds of work,
#: many checkpoint boundaries), with the taint scrubbed before output:
#: verdict ``secure``.
MANYPATHS = """\
.task sys trusted
start:
    mov &P3IN, r4
    mov #0, r7
    bit #1, r4
    jz b1
    add #1, r7
b1:
    bit #2, r4
    jz b2
    add #2, r7
b2:
    bit #4, r4
    jz b3
    add #4, r7
b3:
    bit #8, r4
    jz b4
    add #8, r7
b4:
    mov #20, r5
spin:
    dec r5
    jnz spin
    mov r7, &P2OUT
    halt
"""


def make_service(root, **overrides) -> AnalysisService:
    """A started service rooted in a temp dir with test-fast timings."""
    defaults = dict(
        root=str(root),
        workers=2,
        poll_interval=0.02,
        checkpoint_every=4,
        heartbeat_timeout=15.0,
        drain_grace=15.0,
    )
    defaults.update(overrides)
    service = AnalysisService(ServiceConfig(**defaults))
    service.start()
    return service


def drive(service, records, timeout=180.0):
    """Tick *service* until every record is terminal (no run loop)."""
    deadline = time.monotonic() + timeout
    while any(not r.terminal for r in records):
        if time.monotonic() > deadline:
            states = {r.job_id: r.state for r in records}
            raise TimeoutError(f"jobs never finished: {states}")
        service.tick()
        time.sleep(service.config.poll_interval)


def reap(service):
    """Hard-stop a service's workers without the cooperative drain
    (used to model daemon death and in cleanup paths)."""
    for handle in list(service.supervisor.live.values()):
        handle.kill("test cleanup")
        try:
            handle.process.wait(timeout=10.0)
        except Exception:
            pass
    service.supervisor.live.clear()
    service.stop_server()
    service.journal.close()


def canon(document: dict) -> dict:
    """A verdict document with the run-specific fields stripped, for
    bit-identical comparison across interrupted/uninterrupted runs."""
    document = dict(document)
    for key in ("resumed", "job_id", "attempt_unix"):
        document.pop(key, None)
    stats = dict(document.get("stats") or {})
    stats.pop("wall_seconds", None)
    document["stats"] = stats
    return document


@pytest.fixture
def service(tmp_path):
    instance = make_service(tmp_path / "svc")
    yield instance
    reap(instance)
