"""The REST surface: submission, queries, backpressure codes."""

import json
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceClientError

from tests.service.conftest import (
    TINY_INSECURE,
    TINY_SECURE,
    drive,
    make_service,
    reap,
)


@pytest.fixture
def served(tmp_path):
    service = make_service(tmp_path, port=0)
    url = service.start_server()
    yield service, ServiceClient(url)
    reap(service)


class TestEndpoints:
    def test_health_and_readiness(self, served):
        service, client = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == service.config.workers
        assert health["backlog"] == 0
        assert client.ready()

    def test_address_file_published(self, served):
        service, client = served
        address = (service.root / "address").read_text().strip()
        assert address == client.url

    def test_submit_query_report_roundtrip(self, served):
        service, client = served
        accepted = client.submit(source=TINY_INSECURE, name="http-job")
        assert accepted["state"] == "queued"
        job_id = accepted["id"]

        document = client.job(job_id)
        assert document["name"] == "http-job"
        # The source body never leaves the journal.
        assert "source" not in document

        record = service.get(job_id)
        drive(service, [record])
        final = client.wait(job_id, timeout=60.0)
        assert final["state"] == "done"
        assert final["verdict"] == "insecure"

        report = client.report(job_id)
        assert report["verdict"] == "insecure"
        assert report["violations"]

        listing = client.jobs()
        assert [entry["id"] for entry in listing] == [job_id]

    def test_report_of_unfinished_job_is_202(self, served):
        service, client = served
        job_id = client.submit(source=TINY_SECURE)["id"]
        with urllib.request.urlopen(
            f"{client.url}/jobs/{job_id}/report"
        ) as response:
            assert response.status == 202
            body = json.loads(response.read())
        assert body["state"] == "queued"

    def test_unknown_job_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("j999999-nope")
        assert excinfo.value.status == 404

    def test_submission_without_source_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(name="empty")
        assert excinfo.value.status == 400
        assert not excinfo.value.retriable

    def test_bad_json_is_400(self, served):
        _, client = served
        request = urllib.request.Request(
            f"{client.url}/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestBackpressureCodes:
    def test_queue_full_is_429_and_retriable(self, tmp_path):
        service = make_service(tmp_path, port=0, queue_capacity=1)
        client = ServiceClient(service.start_server())
        try:
            client.submit(source=TINY_SECURE, name="a")
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(source=TINY_SECURE, name="b")
            assert excinfo.value.status == 429
            assert excinfo.value.retriable
            assert not client.ready()
        finally:
            reap(service)

    def test_draining_is_503(self, served):
        service, client = served
        service.draining = True
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(source=TINY_SECURE)
        assert excinfo.value.status == 503
        assert not client.ready()

    def test_oversized_body_is_413(self, served):
        _, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(source="nop\n" * (1 << 20), name="huge")
        assert excinfo.value.status == 413
