"""The durable job journal: replay, torn tails, compaction."""

import pytest

from repro.resilience.errors import CheckpointError
from repro.service.jobs import new_job, transition
from repro.service.journal import JobJournal


def _job(seq, name="j"):
    return new_job(
        seq=seq,
        name=name,
        source="halt",
        policy="untrusted",
        max_cycles=100,
        budget={},
        max_attempts=2,
        now=1.0,
    )


class TestAppendReplay:
    def test_fresh_journal_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        assert journal.replay() == {}
        assert journal.next_seq == 1

    def test_appends_replay_after_reopen(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.replay()
        a, b = _job(journal.next_seq, "a"), None
        journal.append(a)
        b = _job(journal.next_seq, "b")
        journal.append(b)
        journal.close()

        reopened = JobJournal(tmp_path)
        jobs = reopened.replay()
        assert set(jobs) == {a.job_id, b.job_id}
        assert jobs[a.job_id].name == "a"
        assert reopened.next_seq == b.seq + 1

    def test_last_writer_wins_per_job(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.replay()
        record = _job(journal.next_seq)
        journal.append(record)
        transition(record, "running", attempts=1, now=2.0)
        journal.append(record)  # same job id, higher seq
        journal.close()

        jobs = JobJournal(tmp_path).replay()
        assert len(jobs) == 1
        assert jobs[record.job_id].state == "running"
        assert jobs[record.job_id].attempts == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.replay()
        record = _job(journal.next_seq)
        journal.append(record)
        journal.close()
        # A kill -9 mid-append can only tear the final line.
        with (tmp_path / "jobs.log").open("ab") as handle:
            handle.write(b'{"job_id": "j000')

        jobs = JobJournal(tmp_path).replay()
        assert set(jobs) == {record.job_id}

    def test_corruption_before_valid_final_record_is_fatal(self, tmp_path):
        """Only the *final* non-blank line may be torn: a corrupt line
        followed by a valid fsync'd record is real corruption, and
        tolerating it would silently drop that acknowledged record."""
        journal = JobJournal(tmp_path)
        journal.replay()
        record = _job(journal.next_seq)
        journal.append(record)
        journal.close()
        log = tmp_path / "jobs.log"
        valid_line = log.read_bytes().rstrip(b"\n")
        # Corrupt line at len-2 with a valid, newline-less final line.
        log.write_bytes(b'{"torn mid-append\n' + valid_line)

        with pytest.raises(CheckpointError) as excinfo:
            JobJournal(tmp_path).replay()
        assert excinfo.value.code == "JOURNAL_CORRUPT"

    def test_mid_file_corruption_is_typed_fatal(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.replay()
        journal.append(_job(journal.next_seq))
        journal.close()
        log = tmp_path / "jobs.log"
        log.write_bytes(b"garbage not json\n" + log.read_bytes())

        with pytest.raises(CheckpointError) as excinfo:
            JobJournal(tmp_path).replay()
        assert excinfo.value.code == "JOURNAL_CORRUPT"


class TestCompaction:
    def test_compact_snapshots_and_truncates_log(self, tmp_path):
        journal = JobJournal(tmp_path)
        jobs = journal.replay()
        for name in ("a", "b", "c"):
            record = _job(journal.next_seq, name)
            jobs[record.job_id] = record
            journal.append(record)
        journal.compact(jobs)
        assert (tmp_path / "jobs.snapshot").exists()
        assert (tmp_path / "jobs.log").read_bytes() == b""

        replayed = JobJournal(tmp_path).replay()
        assert {r.name for r in replayed.values()} == {"a", "b", "c"}

    def test_seq_continues_across_compaction_and_reopen(self, tmp_path):
        journal = JobJournal(tmp_path)
        jobs = journal.replay()
        record = _job(journal.next_seq)
        jobs[record.job_id] = record
        journal.append(record)
        high_water = journal.next_seq
        journal.compact(jobs)
        journal.close()

        reopened = JobJournal(tmp_path)
        reopened.replay()
        # Sequence numbers never rewind: new appends order after every
        # journaled record even though the log was truncated.
        assert reopened.next_seq >= high_water

    def test_stale_log_lines_after_snapshot_are_noops(self, tmp_path):
        """An interrupted compaction (snapshot written, log not yet
        truncated) must replay to the identical table."""
        journal = JobJournal(tmp_path)
        jobs = journal.replay()
        record = _job(journal.next_seq)
        jobs[record.job_id] = record
        journal.append(record)
        transition(record, "running", attempts=1, now=2.0)
        journal.append(record)
        log_bytes = (tmp_path / "jobs.log").read_bytes()
        journal.compact(jobs)
        journal.close()
        # Crash model: put the pre-compaction log lines back.
        (tmp_path / "jobs.log").write_bytes(log_bytes)

        replayed = JobJournal(tmp_path).replay()
        assert len(replayed) == 1
        assert replayed[record.job_id].state == "running"
