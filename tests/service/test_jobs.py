"""Job records: state machine, digests, ids, history."""

import pytest

from repro.service.jobs import (
    InvalidTransition,
    JOB_STATES,
    JobRecord,
    TERMINAL_STATES,
    TRANSITIONS,
    VERDICT_STATES,
    job_id_for,
    new_job,
    submission_digest,
    transition,
)


def _job(**overrides):
    base = dict(
        seq=7,
        name="t",
        source="halt",
        policy="untrusted",
        max_cycles=1000,
        budget={"max_paths": 4},
        max_attempts=3,
        now=100.0,
    )
    base.update(overrides)
    return new_job(**base)


class TestDigestsAndIds:
    def test_digest_depends_on_content_not_name_or_time(self):
        a = submission_digest("halt", "untrusted", 10, {"max_paths": 1})
        b = submission_digest("halt", "untrusted", 10, {"max_paths": 1})
        assert a == b
        assert a != submission_digest("nop", "untrusted", 10, {"max_paths": 1})
        assert a != submission_digest("halt", "secret", 10, {"max_paths": 1})
        assert a != submission_digest("halt", "untrusted", 11, {"max_paths": 1})
        assert a != submission_digest("halt", "untrusted", 10, {"max_paths": 2})

    def test_budget_order_does_not_change_digest(self):
        a = submission_digest("x", "untrusted", 1, {"a": 1, "b": 2})
        b = submission_digest("x", "untrusted", 1, {"b": 2, "a": 1})
        assert a == b

    def test_job_id_embeds_seq_and_digest_prefix(self):
        assert job_id_for(42, "abcdef" * 12) == "j000042-abcdefabcd"

    def test_new_job_starts_queued_with_stamp(self):
        record = _job()
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.submitted_unix == 100.0
        assert record.job_id.startswith("j000007-")
        assert not record.terminal


class TestStateMachine:
    def test_transition_table_covers_every_state(self):
        assert set(TRANSITIONS) == set(JOB_STATES)
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == frozenset()

    def test_happy_path_to_done(self):
        record = _job()
        transition(record, "running", now=101.0, attempts=1)
        transition(
            record, "done", now=102.0, verdict="secure", exit_code=0
        )
        assert record.terminal
        assert [h["state"] for h in record.history] == ["running", "done"]
        assert record.history[-1]["unix"] == 102.0

    def test_retry_loop(self):
        record = _job()
        transition(record, "running", attempts=1)
        transition(record, "retrying", not_before=123.0)
        transition(record, "running", attempts=2)
        transition(record, "failed", exit_code=6)
        assert record.attempts == 2
        assert record.terminal

    @pytest.mark.parametrize(
        "start, bad",
        [
            ("queued", "done"),
            ("queued", "retrying"),
            ("queued", "inconclusive"),
            ("retrying", "done"),
            ("done", "running"),
            ("failed", "running"),
            ("inconclusive", "retrying"),
        ],
    )
    def test_illegal_edges_raise(self, start, bad):
        record = _job()
        record.state = start
        with pytest.raises(InvalidTransition):
            transition(record, bad)

    def test_unknown_state_and_field_raise(self):
        record = _job()
        with pytest.raises(InvalidTransition):
            transition(record, "exploded")
        with pytest.raises(InvalidTransition):
            transition(record, "running", bogus_field=1)

    def test_verdict_states_map_into_terminals(self):
        assert set(VERDICT_STATES.values()) <= TERMINAL_STATES
        assert VERDICT_STATES["secure"] == "done"
        assert VERDICT_STATES["insecure"] == "done"
        assert VERDICT_STATES["inconclusive"] == "inconclusive"


class TestSerialisation:
    def test_dict_roundtrip(self):
        record = _job()
        transition(record, "running", attempts=1, note="launch")
        clone = JobRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_ignores_unknown_fields(self):
        document = _job().to_dict()
        document["from_the_future"] = True
        record = JobRecord.from_dict(document)
        assert record.job_id == document["job_id"]

    def test_summary_omits_source(self):
        summary = _job().summary()
        assert "source" not in summary
        assert summary["state"] == "queued"
        assert summary["id"].startswith("j000007-")
