"""The chaos acceptance soak: seeded substrate faults + process kills
+ daemon death, and every accepted job still reaches the right verdict.

Three layers of injected failure, composed:

* **substrate faults** -- a job submitted with ``fault_injection``
  raises typed retriable :class:`SimulationError`\\ s inside the worker;
* **process kills** -- the :class:`ChaosMonkey` SIGKILLs workers on a
  seeded schedule;
* **daemon death** -- the daemon itself is dropped without a drain
  (``kill -9`` model) and restarted on the same journal.

The invariants: no accepted job is ever lost, deterministic workloads
reach the same verdict they reach undisturbed, and a job whose faults
never clear fails *typed* with its attempt budget spent.
"""

from repro.service import ChaosPlan, soak
from repro.service.retry import RetryPolicy

from tests.service.conftest import (
    MANYPATHS,
    TINY_INSECURE,
    drive,
    make_service,
    reap,
)


def test_soak_with_kills_reaches_reference_verdicts(tmp_path):
    service = make_service(tmp_path, workers=2, checkpoint_every=4)
    try:
        plan = ChaosPlan(
            seed=2, rate=1.0, max_kills=2, require_checkpoint=False
        )
        report = soak(
            service,
            [
                {"source": MANYPATHS, "name": "forky"},
                {"source": TINY_INSECURE, "name": "leaky"},
            ],
            plan=plan,
            timeout=300.0,
        )
        assert report.submitted == 2
        assert report.kills >= 1
        # Chaos changed the schedule, never the verdicts.
        assert report.verdicts == {"secure": 1, "insecure": 1}
        assert report.recovered_retries >= 1
        by_name = {r.name: r for r in service.jobs.values()}
        assert by_name["forky"].exit_code == 0
        assert by_name["leaky"].exit_code == 1
    finally:
        reap(service)


def test_persistent_substrate_faults_fail_typed_after_attempts(tmp_path):
    """A job whose fault injection fires on every attempt retries the
    configured number of times, then fails with the taxonomy intact."""
    service = make_service(
        tmp_path,
        workers=1,
        max_attempts=2,
        retry=RetryPolicy(max_attempts=2, base_seconds=0.1, cap_seconds=0.5),
    )
    try:
        record = service.submit(
            source=MANYPATHS,
            name="doomed",
            fault_injection={
                "seed": 3,
                "rate": 1.0,
                "kinds": ["gate_eval"],
                "max_faults": 1,
            },
        )
        drive(service, [record])
        assert record.state == "failed"
        assert record.attempts == 2
        # The typed error and its taxonomy exit code survive retries.
        assert record.error["retriable"] is True
        assert record.error["code"] in ("SIMULATION", "FAULT_INJECTED")
        assert record.exit_code == 6
    finally:
        reap(service)


def test_daemon_death_mid_chaos_loses_nothing(tmp_path):
    """kill -9 of the daemon between submissions and verdicts: the
    restarted daemon replays the journal and finishes every job."""
    first = make_service(tmp_path, workers=1, checkpoint_every=4)
    slow = first.submit(source=MANYPATHS, name="slow")
    fast = first.submit(source=TINY_INSECURE, name="fast")
    # Launch the first job, then model the machine rebooting under it.
    first.tick()
    assert slow.state == "running"
    reap(first)

    second = make_service(tmp_path, workers=2, checkpoint_every=4)
    try:
        recovered_slow = second.get(slow.job_id)
        recovered_fast = second.get(fast.job_id)
        assert recovered_slow.state == "retrying"
        assert slow.job_id in second.recovered
        assert recovered_fast.state == "queued"
        drive(second, [recovered_slow, recovered_fast])
        assert recovered_slow.verdict == "secure"
        assert recovered_fast.verdict == "insecure"
    finally:
        reap(second)
