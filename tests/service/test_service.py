"""End-to-end daemon behaviour with real worker subprocesses:
verdicts, fail-fast, backpressure, shedding, crash recovery."""

import sys

import pytest

from repro.service import AnalysisService, Draining, QueueFull, ServiceConfig
from repro.service.jobs import TERMINAL_STATES
from repro.service.retry import RetryPolicy

from tests.service.conftest import (
    TINY_INSECURE,
    TINY_SECURE,
    drive,
    make_service,
    reap,
)


class TestVerdicts:
    def test_secure_and_insecure_jobs_complete(self, service):
        secure = service.submit(source=TINY_SECURE, name="tiny-secure")
        insecure = service.submit(source=TINY_INSECURE, name="tiny-insecure")
        drive(service, [secure, insecure])

        assert secure.state == "done"
        assert secure.verdict == "secure"
        assert secure.exit_code == 0
        assert secure.attempts == 1

        assert insecure.state == "done"
        assert insecure.verdict == "insecure"
        assert insecure.exit_code == 1
        report = service.report(insecure.job_id)
        assert report["verdict"] == "insecure"
        assert report["violations"]

    def test_unassemblable_source_fails_fast_with_input_code(self, service):
        record = service.submit(source="this is not assembly\n", name="bad")
        drive(service, [record])
        assert record.state == "failed"
        # Fail fast: InputError is not retriable, one attempt only.
        assert record.attempts == 1
        assert record.exit_code == 4
        assert record.error["code"] == "INPUT"


class TestFalseVerdictGuard:
    def test_worker_dying_before_analysis_is_not_a_verdict(self, tmp_path):
        """A worker that exits 1 without writing a result document (an
        interpreter-level death) must be retried as an infrastructure
        failure, never recorded as verdict ``insecure``; and the
        journaled per-job max_attempts (from ServiceConfig) bounds the
        retries, not the RetryPolicy default of 4."""
        config = ServiceConfig(
            root=str(tmp_path / "svc"),
            workers=1,
            poll_interval=0.02,
            max_attempts=2,
            retry=RetryPolicy(base_seconds=0.05, cap_seconds=0.1),
        )
        service = AnalysisService(
            config,
            spawn_command=lambda spec_path: [
                sys.executable,
                "-c",
                "import sys; sys.exit(1)",
            ],
        )
        service.start()
        try:
            record = service.submit(source=TINY_INSECURE, name="dies-early")
            drive(service, [record], timeout=60.0)
            assert record.state == "failed"
            assert record.verdict is None
            assert record.max_attempts == 2
            assert record.attempts == 2
        finally:
            reap(service)


class TestBackpressure:
    def test_queue_full_raises(self, tmp_path):
        service = make_service(tmp_path, workers=1, queue_capacity=2)
        try:
            service.submit(source=TINY_SECURE, name="a")
            service.submit(source=TINY_SECURE, name="b")
            with pytest.raises(QueueFull):
                service.submit(source=TINY_SECURE, name="c")
            ready, document = service.readiness()
            assert not ready
            assert document["reason"] == "queue full"
        finally:
            reap(service)

    def test_draining_rejects_submissions(self, service):
        service.draining = True
        with pytest.raises(Draining):
            service.submit(source=TINY_SECURE)

    def test_overload_sheds_launch_budgets(self, tmp_path):
        service = make_service(
            tmp_path, workers=1, queue_capacity=8, shed_after=1
        )
        try:
            records = [
                service.submit(source=TINY_SECURE, name=f"s{i}")
                for i in range(3)
            ]
            drive(service, records)
            assert all(r.state == "done" for r in records)
            # Backlog was above the shed threshold while the later jobs
            # launched, so at least one ran with clamped budgets.
            assert any(r.shed for r in records)
            shed_record = next(r for r in records if r.shed)
            assert "shed launch" in {h["note"] for h in shed_record.history}
        finally:
            reap(service)


class TestCrashRecovery:
    def test_accepted_queued_job_survives_daemon_death(self, tmp_path):
        first = make_service(tmp_path)
        record = first.submit(source=TINY_SECURE, name="survivor")
        job_id = record.job_id
        # kill -9 model: no drain, no compaction, no close.
        reap(first)

        second = make_service(tmp_path)
        try:
            recovered = second.get(job_id)
            assert recovered is not None
            assert recovered.state == "queued"
            drive(second, [recovered])
            assert recovered.verdict == "secure"
        finally:
            reap(second)

    def test_running_job_moves_to_retrying_on_restart(self, tmp_path):
        first = make_service(tmp_path, workers=1)
        record = first.submit(source=TINY_SECURE, name="inflight")
        # Launch it, then model the daemon (and its worker) dying.
        first.tick()
        assert record.state == "running"
        reap(first)

        second = make_service(tmp_path)
        try:
            recovered = second.get(record.job_id)
            assert record.job_id in second.recovered
            assert recovered.state == "retrying"
            # Recovery is the daemon's fault: no attempt consumed.
            assert recovered.attempts == 1
            drive(second, [recovered])
            assert recovered.verdict == "secure"
            assert recovered.attempts == 2
        finally:
            reap(second)

    def test_restart_after_shutdown_replays_terminal_states(self, tmp_path):
        first = make_service(tmp_path)
        record = first.submit(source=TINY_INSECURE, name="done-job")
        drive(first, [record])
        first.shutdown()

        second = make_service(tmp_path)
        try:
            replayed = second.get(record.job_id)
            assert replayed.state in TERMINAL_STATES
            assert replayed.verdict == "insecure"
            assert replayed.exit_code == 1
            assert second.recovered == []
        finally:
            reap(second)


class TestDrain:
    def test_shutdown_journals_and_compacts(self, tmp_path):
        service = make_service(tmp_path)
        record = service.submit(source=TINY_SECURE, name="drained")
        service.shutdown()
        # The queued job is still journaled (snapshot, since shutdown
        # compacts) and a restart picks it up.
        assert (tmp_path / "jobs.snapshot").exists()
        restarted = make_service(tmp_path)
        try:
            assert restarted.get(record.job_id) is not None
        finally:
            reap(restarted)
