"""Worker supervision: heartbeat staleness lives in the wall-clock
domain (the heartbeat file's st_mtime), not the monotonic one."""

import json
import sys
import time

from repro.service.supervisor import Supervisor


def _sleep_command(spec_path):
    """A worker that never beats: reads its spec, then hangs."""
    spec = json.loads(open(spec_path).read())
    assert spec["job_id"]
    return [sys.executable, "-c", "import time; time.sleep(60)"]


def _spec(tmp_path, job_id="j1"):
    return {
        "job_id": job_id,
        "spec_path": str(tmp_path / "spec.json"),
        "heartbeat": str(tmp_path / "heartbeat"),
        "budget": {},
    }


def test_heartbeat_loss_kills_hung_worker(tmp_path):
    """A worker whose heartbeat file goes stale is killed even with no
    hard deadline set (regression: comparing the file's wall-clock
    st_mtime against time.monotonic() made the age hugely negative, so
    heartbeat loss never fired and a hung worker lived forever)."""
    supervisor = Supervisor(
        workers=1, heartbeat_timeout=0.2, spawn_command=_sleep_command
    )
    spec = _spec(tmp_path)
    # A real wall-clock mtime, as the worker's beat thread would leave.
    (tmp_path / "heartbeat").touch()
    handle = supervisor.spawn(spec)
    assert handle.hard_deadline is None  # heartbeat is the only guard
    try:
        ends = []
        deadline = time.monotonic() + 10.0
        while not ends and time.monotonic() < deadline:
            time.sleep(0.05)
            ends = supervisor.poll()
        assert ends, "heartbeat loss was never detected"
        assert ends[0].crashed
        assert "heartbeat lost" in ends[0].reason
    finally:
        supervisor.kill_all("test cleanup")
        for live in supervisor.live.values():
            live.process.wait(timeout=10.0)


def test_fresh_heartbeat_keeps_worker_alive(tmp_path):
    supervisor = Supervisor(
        workers=1, heartbeat_timeout=30.0, spawn_command=_sleep_command
    )
    spec = _spec(tmp_path)
    (tmp_path / "heartbeat").touch()
    supervisor.spawn(spec)
    try:
        assert supervisor.poll() == []
        assert spec["job_id"] in supervisor.live
        age = supervisor.live[spec["job_id"]].heartbeat_age()
        assert 0.0 <= age < 30.0
    finally:
        supervisor.kill_all("test cleanup")
        for live in supervisor.live.values():
            live.process.wait(timeout=10.0)
