"""Benchmark-suite tests: assembly, concrete execution, flow profiles."""

import pytest

from repro.core import TaintTracker
from repro.isa.assembler import assemble
from repro.isasim.executor import run_concrete
from repro.workloads import micro, motivating
from repro.workloads.registry import (
    BENCHMARKS,
    TABLE2_VIOLATORS,
    benchmark,
    benchmark_names,
)


class TestRegistry:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARKS) == 13

    def test_table1_names(self):
        expected = {
            "mult",
            "binSearch",
            "tea8",
            "intFilt",
            "tHold",
            "div",
            "inSort",
            "rle",
            "intAVG",
            "autocorr",
            "FFT",
            "ConvEn",
            "Viterbi",
        }
        assert set(benchmark_names()) == expected

    def test_suites(self):
        eembc = {n for n, b in BENCHMARKS.items() if b.suite == "eembc"}
        assert eembc == {"autocorr", "FFT", "ConvEn", "Viterbi"}

    def test_violator_set_matches_table2(self):
        violators = {
            n for n, b in BENCHMARKS.items() if b.expected_violator
        }
        assert violators == set(TABLE2_VIOLATORS)


class TestAssemblyAndExecution:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_assembles(self, name):
        info = benchmark(name)
        program = info.service_program()
        assert program.task_named("bench") is not None
        assert not program.task_named("bench").trusted
        assert program.task_named("sys").trusted

    @pytest.mark.parametrize("name", benchmark_names())
    def test_runs_to_completion(self, name):
        info = benchmark(name)
        run = run_concrete(
            info.measurement_program(),
            max_cycles=100_000,
            follow_watchdog=False,
        )
        assert run.halted, f"{name} never reached halt"
        assert run.writes_to("P2OUT") >= 1, f"{name} produced no output"

    def test_mult_is_correct(self):
        from itertools import cycle

        inputs = cycle([7, 6])  # kernels run in activation batches
        run = run_concrete(
            benchmark("mult").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        assert run.port_writes[-1][1].value == 42

    def test_div_is_correct(self):
        from itertools import cycle

        inputs = cycle([100, 7])
        run = run_concrete(
            benchmark("div").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        assert run.port_writes[-1][1].value == 100 // 7

    def test_binsearch_finds_key(self):
        from itertools import cycle

        inputs = cycle([23])  # present in the table at index 5
        run = run_concrete(
            benchmark("binSearch").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        assert run.port_writes[-1][1].value == 5

    def test_insort_sorts(self):
        from itertools import cycle

        samples = [9, 3, 7, 1, 8, 2, 6, 4]
        inputs = cycle(samples)
        run = run_concrete(
            benchmark("inSort").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        ram = run.executor.space.ram
        values = [ram.get(0x400 + i).value for i in range(8)]
        assert values == sorted(samples)
        assert run.port_writes[-1][1].value == 1

    def test_rle_counts_runs(self):
        from itertools import cycle

        samples = [5, 5, 5, 2, 2, 9, 9, 9]
        inputs = cycle(samples)
        run = run_concrete(
            benchmark("rle").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        # boundaries: 0->5, 5->2, 2->9 (first sample counts as boundary)
        assert run.port_writes[-1][1].value == 3

    def test_thold_counts_events(self):
        from itertools import cycle

        samples = [0x3000, 0x100, 0x2FFF, 0x100, 0x100, 0x100, 0x100, 0x100]
        inputs = cycle(samples)
        run = run_concrete(
            benchmark("tHold").measurement_program(),
            inputs=lambda port: next(inputs),
            follow_watchdog=False,
        )
        assert run.port_writes[-1][1].value == 2


class TestFlowProfiles:
    """Spot-check the Table 2 information-flow shapes (full sweep in
    benchmarks/bench_table2_conditions.py)."""

    @pytest.mark.parametrize("name", ["mult", "rle"])
    def test_clean_kernels_verify(self, name):
        result = TaintTracker(
            benchmark(name).service_program(), max_cycles=400_000
        ).run()
        assert result.secure
        assert result.violated_conditions() == set()

    @pytest.mark.parametrize("name", ["div", "tHold"])
    def test_violators_break_conditions_1_and_2(self, name):
        result = TaintTracker(
            benchmark(name).service_program(), max_cycles=400_000
        ).run()
        assert not result.secure
        assert result.violated_conditions() == {1, 2}
        assert result.violating_stores()
        assert result.tasks_needing_watchdog() == ["bench"]


class TestMicroBenchmarks:
    def test_fig8_unprotected_pc_stays_tainted(self):
        program = assemble(micro.FIG8_UNPROTECTED, name="fig8")
        result = TaintTracker(program, max_cycles=400_000).run()
        assert not result.secure
        assert 1 in result.violated_conditions()

    def test_fig8_protected_verifies(self):
        program = assemble(micro.FIG8_PROTECTED, name="fig8p")
        result = TaintTracker(program, max_cycles=400_000).run()
        assert result.secure
        assert result.tasks_needing_watchdog() == ["tainted_code"]

    def test_fig9_unmasked_taints_memory(self):
        program = assemble(micro.FIG9_UNMASKED, name="fig9")
        result = TaintTracker(program, max_cycles=400_000).run()
        assert 2 in result.violated_conditions()

    def test_fig9_masked_confines(self):
        program = assemble(micro.FIG9_MASKED, name="fig9m")
        result = TaintTracker(program, max_cycles=400_000).run()
        assert 2 not in result.violated_conditions()


class TestMotivatingExamples:
    def test_figure3_secure(self):
        program = assemble(motivating.figure3_source(), name="fig3")
        result = TaintTracker(program, max_cycles=600_000).run()
        assert result.secure

    def test_figure4_violates(self):
        program = assemble(motivating.figure4_source(), name="fig4")
        result = TaintTracker(program, max_cycles=600_000).run()
        assert not result.secure
        assert 2 in result.violated_conditions()

    def test_figure5_masked_secure(self):
        program = assemble(motivating.figure5_source(), name="fig5")
        result = TaintTracker(program, max_cycles=600_000).run()
        assert result.secure
