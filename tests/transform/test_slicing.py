"""Tests for watchdog time-slice selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.watchdog import WDT_INTERVALS
from repro.transform.slicing import (
    PER_SLICE_OVERHEAD,
    SlicePlan,
    choose_slicing,
)


class TestChooseSlicing:
    def test_tiny_task_uses_smallest_interval(self):
        plan = choose_slicing(10)
        assert plan.interval == 64
        assert plan.slices == 1
        assert plan.total_cycles == 64

    def test_single_long_slice_beats_many_short(self):
        # 8000 useful cycles: 1 x 8192 (=8192) beats ceil(8000/34)=236 x 64
        plan = choose_slicing(8000)
        assert plan.interval == 8192
        assert plan.slices == 1

    def test_multi_slice_when_task_exceeds_max_interval(self):
        plan = choose_slicing(40_000)
        assert plan.total_cycles >= 40_000
        assert plan.slices >= 2

    def test_interval_select_encoding(self):
        for select, interval in enumerate(WDT_INTERVALS):
            plan = SlicePlan(interval, select, 1, 10)
            assert plan.wdtctl_value == 0x5A00 | select

    def test_overhead_accounting(self):
        plan = choose_slicing(100)
        assert plan.overhead_cycles == plan.total_cycles - 100
        assert plan.overhead_fraction == pytest.approx(
            plan.overhead_cycles / 100
        )

    def test_zero_cycles(self):
        plan = choose_slicing(0)
        assert plan.slices == 1
        assert plan.overhead_fraction == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            choose_slicing(-1)

    @given(st.integers(0, 200_000))
    @settings(max_examples=200)
    def test_plan_always_bounds_task(self, cycles):
        plan = choose_slicing(cycles)
        # capacity check: the slices can hold the work plus per-slice costs
        useful = plan.interval - PER_SLICE_OVERHEAD
        assert plan.slices * useful >= cycles

    @given(st.integers(1, 200_000))
    @settings(max_examples=200)
    def test_plan_is_optimal_over_grid(self, cycles):
        import math

        plan = choose_slicing(cycles)
        for interval in WDT_INTERVALS:
            useful = interval - PER_SLICE_OVERHEAD
            if useful <= 0:
                continue
            slices = max(1, math.ceil(cycles / useful))
            assert plan.total_cycles <= slices * interval
