"""Tests for diagnostics rendering and the watchdog-reset details."""

import pytest

from repro.core.violations import Violation, ViolationKind
from repro.isa.assembler import assemble
from repro.transform.report import render_diagnostics
from repro.transform.rootcause import RootCauses
from repro.transform.watchdog_reset import estimate_task_cycles


class TestRenderDiagnostics:
    def test_no_findings(self):
        text = render_diagnostics("app", RootCauses(), [])
        assert "no modifications required" in text

    def test_fundamental_errors_rendered(self):
        causes = RootCauses(
            fundamental=[
                Violation(
                    ViolationKind.TRUSTED_READ_TAINTED_PORT,
                    cycle=3,
                    address=0x10,
                    task="sys",
                    detail="trusted code reads a tainted input port",
                    port="P1IN",
                    source_line=4,
                )
            ]
        )
        text = render_diagnostics("app", causes, [])
        assert "app:line 4: error" in text
        assert "redefine the information-flow labels" in text

    def test_fixes_rendered_as_warnings(self):
        text = render_diagnostics(
            "app", RootCauses(), ["store masked at line 9"]
        )
        assert "app: warning: store masked at line 9" in text

    def test_port_errors_rendered(self):
        causes = RootCauses(
            port_errors=[
                Violation(
                    ViolationKind.TAINTED_WRITE_UNTAINTED_PORT,
                    cycle=1,
                    address=0x20,
                    task="app",
                    port="P4OUT",
                )
            ]
        )
        text = render_diagnostics("app", causes, [])
        assert "error" in text


class TestEstimateTaskCycles:
    def test_scales_with_task_size(self):
        program = assemble(
            """
.task small untrusted
    nop
    ret
.task big untrusted
big:
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    ret
            """,
            name="e",
        )
        small = estimate_task_cycles(program, "small")
        big = estimate_task_cycles(program, "big")
        assert big > small
        assert small >= 32
