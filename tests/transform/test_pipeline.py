"""Tests for root-cause identification, the rewrites, and secure_compile."""

import pytest

from repro.core import TaintTracker, default_policy
from repro.core.labels import SecurityPolicy
from repro.isa.assembler import assemble
from repro.transform import (
    FundamentalViolation,
    MaskingError,
    WatchdogTransformError,
    choose_slicing,
    identify_root_causes,
    insert_masks,
    insert_watchdog_protection,
    secure_compile,
)

FIG4 = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""

CONTROL_ONLY = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    tst r4
    jz app_skip
    nop
app_skip:
    ret
"""


class TestRootCauses:
    def test_fig4_causes(self):
        result = TaintTracker(assemble(FIG4, name="fig4")).run()
        causes = identify_root_causes(result)
        assert causes.needs_masking
        assert causes.needs_watchdog
        assert causes.automatic_repair_possible
        assert len(causes.stores_to_mask) == 1

    def test_fundamental_violation_detected(self):
        program = assemble(
            ".task sys trusted\n    mov &P1IN, r4\n    halt\n", name="bad"
        )
        result = TaintTracker(program).run()
        causes = identify_root_causes(result)
        assert causes.fundamental
        assert not causes.automatic_repair_possible

    def test_direct_port_write_is_port_error(self):
        program = assemble(
            FIG4.replace("mov r5, 0(r4)", "mov r5, &P4OUT"), name="direct"
        )
        result = TaintTracker(program).run()
        causes = identify_root_causes(result)
        assert causes.port_errors
        assert not causes.automatic_repair_possible


class TestMasking:
    def test_insert_masks_rewrites_source(self):
        program = assemble(FIG4, name="fig4")
        result = TaintTracker(program).run()
        stores = result.violating_stores()
        new_source = insert_masks(FIG4, program, stores, default_policy())
        # The confined address is built in the reserved scratch register
        # so the task's own registers keep their values.
        assert "mov r4, r14" in new_source
        assert "and #0x03FF, r14" in new_source
        assert "bis #0x0400, r14" in new_source
        lines = new_source.splitlines()
        store_index = next(
            i for i, l in enumerate(lines) if "mov r5, 0(r14)" in l
        )
        assert "bis" in lines[store_index - 1]
        assert "and" in lines[store_index - 2]
        assert "mov r4, r14" in lines[store_index - 3]

    def test_masked_program_reassembles_and_verifies_memory(self):
        program = assemble(FIG4, name="fig4")
        result = TaintTracker(program).run()
        new_source = insert_masks(
            FIG4, program, result.violating_stores(), default_policy()
        )
        reprogram = assemble(new_source, name="fig4m")
        second = TaintTracker(reprogram).run()
        assert 2 not in second.violated_conditions()

    def test_absolute_store_cannot_be_masked(self):
        source = (
            ".task app untrusted\n"
            "    mov &P1IN, r4\n"
            "    mov r4, &0x0200\n"
            "    halt\n"
        )
        program = assemble(source, name="abs")
        address = program.lines[1].address  # the absolute store
        with pytest.raises(MaskingError, match="absolute"):
            insert_masks(source, program, [address], default_policy())

    def test_unaligned_partition_rejected(self):
        from repro.memmap import MemoryRegion

        policy = SecurityPolicy(
            tainted_memory=(MemoryRegion("odd", 0x0401, 0x0500),)
        )
        program = assemble(FIG4, name="fig4")
        with pytest.raises(MaskingError):
            insert_masks(FIG4, program, [0], policy)


class TestWatchdogTransform:
    def test_rewrites_call_and_ret(self):
        program = assemble(CONTROL_ONLY, name="ctrl")
        plan = choose_slicing(40)
        new_source = insert_watchdog_protection(
            CONTROL_ONLY, program, {"app": plan}
        )
        assert "&WDTCTL" in new_source
        assert "br #app" in new_source
        assert "jmp $" in new_source
        assert "call #app" not in new_source
        # the sys restart loop survives
        assert "jmp start" in new_source

    def test_missing_call_convention(self):
        source = CONTROL_ONLY.replace("call #app", "br #app")
        program = assemble(source, name="ctrl")
        with pytest.raises(WatchdogTransformError, match="call"):
            insert_watchdog_protection(
                source, program, {"app": choose_slicing(40)}
            )

    def test_missing_ret(self):
        source = CONTROL_ONLY.replace("    ret", "    jmp app")
        program = assemble(source, name="ctrl")
        with pytest.raises(WatchdogTransformError, match="ret"):
            insert_watchdog_protection(
                source, program, {"app": choose_slicing(40)}
            )


class TestSecureCompile:
    def test_fig4_repairs_to_secure(self):
        result = secure_compile(FIG4, name="fig4", task_cycles={"app": 40})
        assert result.secure
        assert result.masked_stores == 1
        assert result.bounded_tasks == ["app"]
        assert result.iterations >= 2
        # the verified binary still contains the app task
        assert result.program.task_named("app") is not None

    def test_control_only_needs_watchdog_not_masks(self):
        result = secure_compile(
            CONTROL_ONLY, name="ctrl", task_cycles={"app": 40}
        )
        assert result.secure
        assert result.masked_stores == 0
        assert result.bounded_tasks == ["app"]

    def test_clean_program_untouched(self):
        clean = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""
        result = secure_compile(clean, name="clean")
        assert result.secure
        assert not result.modified
        assert result.iterations == 1
        assert "no modifications required" in result.diagnostics()

    def test_fundamental_violation_raises(self):
        bad = (
            ".task sys trusted\n"
            "    mov &P1IN, r4\n"
            "    halt\n"
        )
        with pytest.raises(FundamentalViolation, match="error"):
            secure_compile(bad, name="bad")

    def test_diagnostics_mention_fixes(self):
        result = secure_compile(FIG4, name="fig4", task_cycles={"app": 40})
        text = result.diagnostics()
        assert "watchdog" in text
        assert "mask" in text

    def test_verification_of_masked_store_inside_tainted_control(self):
        """Section 5.2: masks work even when the PC is already tainted,
        because the analysis verifies the mask on every explored path."""
        source = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    tst r5
    jz app_store
    nop
app_store:
    mov r5, 0(r4)
    ret
"""
        result = secure_compile(
            source, name="fig4ctl", task_cycles={"app": 60}
        )
        assert result.secure
        assert result.masked_stores == 1
        assert result.bounded_tasks == ["app"]
