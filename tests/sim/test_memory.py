"""Tests for the tainted memory model, especially address smearing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.sim.memory import TaintedMemory


def small_memory(size=64):
    memory = TaintedMemory(size)
    memory.load(0, range(size))  # word i holds value i, untainted
    return memory


class TestConcreteAccess:
    def test_initially_unknown_untainted(self):
        memory = TaintedMemory(8)
        word = memory.get(3)
        assert word.xmask == 0xFFFF
        assert word.tmask == 0

    def test_load_and_read(self):
        memory = small_memory()
        assert memory.read(TWord.const(5)).value == 5

    def test_exact_write(self):
        memory = small_memory()
        memory.write(TWord.const(7), TWord.const(0xAB, tmask=0x3))
        word = memory.get(7)
        assert word.value == 0xAB
        assert word.tmask == 0x3

    def test_write_strobe_zero_untainted_is_noop(self):
        memory = small_memory()
        memory.write(TWord.const(7), TWord.const(0xAB), wen=(ZERO, 0))
        assert memory.get(7).value == 7


class TestSmearing:
    def test_fully_unknown_address_taints_everything(self):
        """Figure 9 left-hand listing: unmasked tainted store address."""
        memory = small_memory()
        address = TWord.unknown(16, tmask=0xFFFF)
        data = TWord.const(500, tmask=0xFFFF)
        memory.write(address, data)
        assert bool(memory.tainted_words().all())

    def test_masked_address_confines_taint(self):
        """Figure 9 right-hand listing: AND #mask / BIS #base before store."""
        memory = TaintedMemory(2048)
        memory.load(0, [0] * 2048)
        raw = TWord.unknown(16, tmask=0xFFFF)
        masked = (raw & TWord.const(0x03FF)) | TWord.const(0x0400)
        masked = TWord(masked.bits, masked.xmask & 0x7FF, masked.tmask, 16)
        memory.write(masked, TWord.const(500, tmask=0xFFFF))
        tainted = memory.tainted_words()
        assert bool(tainted[0x400:0x800].all())
        assert not tainted[:0x400].any()
        assert not tainted[0x800:].any()

    def test_partial_unknown_address_merges_values(self):
        memory = small_memory()
        # Address 0b0000_01X0: may be 4 or 6.
        address = TWord(0b100, 0b010, 0, 16)
        memory.write(address, TWord.const(0xFF))
        word4 = memory.get(4)
        word6 = memory.get(6)
        # Both may-or-may-not hold 0xFF now: merged with old contents.
        assert word4.xmask == (4 ^ 0xFF)
        assert word6.xmask == (6 ^ 0xFF)
        assert memory.get(5).value == 5  # untouched

    def test_tainted_concrete_address_writes_one_word_tainted(self):
        """Tainted-but-concrete addresses are definite on this path (the
        attacker's other choices live on other explored paths); the written
        word is fully tainted because *whether it holds this data* is
        attacker-influenced."""
        memory = small_memory()
        address = TWord.const(4, tmask=0x1)
        memory.write(address, TWord.const(0))
        assert memory.get(4).value == 0
        assert memory.get(4).tmask == 0xFFFF
        assert memory.get(5).value == 5
        assert memory.get(5).tmask == 0
        assert memory.get(6).tmask == 0

    def test_unknown_strobe_merges(self):
        memory = small_memory()
        memory.write(TWord.const(3), TWord.const(0xF0), wen=(UNKNOWN, 0))
        word = memory.get(3)
        assert word.xmask == (3 ^ 0xF0)

    def test_tainted_zero_strobe_is_noop_on_this_path(self):
        """A tainted strobe that is 0 here means "the store happens on a
        different attacker-chosen path" -- which the tracker explores
        separately, so nothing happens on this one."""
        memory = small_memory()
        memory.write(TWord.const(3), TWord.const(0xF0), wen=(ZERO, 1))
        word = memory.get(3)
        assert word.bits == 3 and word.xmask == 0
        assert word.tmask == 0

    def test_smeared_read_merges_and_taints(self):
        memory = small_memory()
        memory.set(2, TWord.const(0xAA, tmask=0x1))
        address = TWord(0b10, 0b01, 0, 16)  # 2 or 3
        word = memory.read(address)
        assert word.tmask & 0x1
        # 0xAA vs 3: every differing bit is X.
        assert word.xmask == (0xAA ^ 0x3)

    def test_read_tainted_address_taints_result(self):
        memory = small_memory()
        word = memory.read(TWord.const(5, tmask=0x1))
        assert word.tmask == 0xFFFF

    def test_out_of_bank_address_reads_unknown(self):
        memory = small_memory(64)
        word = memory.read(TWord.const(0x1000))
        # 0x1000 is representable but beyond the 64-word bank: exact path
        # wraps modulo the bank (matching a decoded address bus).
        assert word.value == 0

    def test_provably_outside_pattern_reads_unknown(self):
        memory = small_memory(64)
        address = TWord(0x8000, 0x00FF, 0, 16)  # high bit known set
        word = memory.read(address)
        assert word.xmask == 0xFFFF
        assert word.tmask == 0


class TestRegions:
    def test_region_taint_count(self):
        memory = small_memory()
        memory.set(10, TWord.const(0, tmask=1))
        memory.set(11, TWord.const(0, tmask=1))
        assert memory.region_taint_count(0, 64) == 2
        assert memory.region_tainted(10, 12)
        assert not memory.region_tainted(0, 10)

    def test_taint_untaint_region(self):
        memory = small_memory()
        memory.taint_region(4, 8)
        assert memory.region_taint_count(0, 64) == 4
        memory.untaint_region(4, 8)
        assert memory.region_taint_count(0, 64) == 0


words16 = st.builds(
    TWord,
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
)


class TestLattice:
    def test_copy_is_independent(self):
        memory = small_memory()
        clone = memory.copy()
        clone.set(0, TWord.const(99))
        assert memory.get(0).value == 0

    @given(st.integers(0, 63), words16)
    @settings(max_examples=50, deadline=None)
    def test_merge_covers_both(self, index, word):
        left = small_memory()
        right = small_memory()
        right.set(index, word)
        merged = left.copy()
        merged.merge_from(right)
        assert merged.covers(left)
        assert merged.covers(right)

    def test_covers_requires_taint_superset(self):
        plain = small_memory()
        tainted = small_memory()
        tainted.set(0, TWord.const(0, tmask=1))
        assert tainted.covers(plain)
        assert not plain.covers(tainted)

    def test_covers_reflexive(self):
        memory = small_memory()
        assert memory.covers(memory)

    def test_equality(self):
        assert small_memory() == small_memory()
        other = small_memory()
        other.set(1, TWord.const(0))
        assert small_memory() != other

    def test_write_soundness_oracle(self):
        """Merged writes must cover both written and unwritten outcomes."""
        base = small_memory(16)
        smeared = base.copy()
        address = TWord(0b0100, 0b0011, 0, 16)  # 4..7
        data = TWord.const(0xCC)
        smeared.write(address, data)
        for concrete in (4, 5, 6, 7):
            oracle = base.copy()
            oracle.write(TWord.const(concrete), data)
            assert smeared.covers(oracle)
        assert smeared.covers(base)  # "no write" need not be covered for
        # definite strobes, but merged writes do cover it by construction
