"""Input-port wiring on the gate-level runner.

The mapping form is validated eagerly so a misspelt port name fails at
construction (naming the known ports) instead of surfacing cycles later
as a silently undriven port; the callable form stays lazy for stateful
drivers but converts lookup failures into a clear error.
"""

import pytest

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.sim.runner import GateRunner

READ_P1IN = """
.task sys trusted
    mov &P1IN, r4
    mov r4, &P2OUT
    halt
"""


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


@pytest.fixture
def program():
    return assemble(READ_P1IN, name="readp1")


class TestMappingInputs:
    def test_constant_value_drives_port(self, circuit, program):
        runner = GateRunner(circuit, program, inputs={"P1IN": 0x2A})
        runner.run(max_cycles=60)
        assert runner.register(4).value == 0x2A

    def test_callable_value_drives_port(self, circuit, program):
        values = iter([0x17])
        runner = GateRunner(
            circuit, program, inputs={"P1IN": lambda: next(values)}
        )
        runner.run(max_cycles=60)
        assert runner.register(4).value == 0x17

    def test_unknown_port_name_fails_eagerly(self, circuit, program):
        with pytest.raises(ValueError) as excinfo:
            GateRunner(circuit, program, inputs={"P9IN": 1})
        message = str(excinfo.value)
        assert "P9IN" in message
        # the error lists the valid names so the fix is obvious
        for known in ("P1IN", "P3IN", "P5IN"):
            assert known in message

    def test_all_unknown_names_are_reported(self, circuit, program):
        with pytest.raises(ValueError) as excinfo:
            GateRunner(
                circuit, program, inputs={"P9IN": 1, "BOGUS": 2, "P1IN": 3}
            )
        message = str(excinfo.value)
        assert "BOGUS" in message and "P9IN" in message

    def test_partial_mapping_leaves_other_ports_alone(
        self, circuit, program
    ):
        # only P1IN is driven; P3IN/P5IN keep their default drivers
        runner = GateRunner(circuit, program, inputs={"P1IN": 5})
        runner.run(max_cycles=60)
        assert runner.register(4).value == 5


class TestCallableInputs:
    def test_callable_polled_per_port(self, circuit, program):
        runner = GateRunner(
            circuit, program, inputs=lambda port: {"P1IN": 0x33}.get(port, 0)
        )
        runner.run(max_cycles=60)
        assert runner.register(4).value == 0x33

    def test_lookup_error_names_the_port(self, circuit, program):
        runner = GateRunner(
            circuit, program, inputs=lambda port: {"P5IN": 1}[port]
        )
        with pytest.raises(ValueError, match="P1IN"):
            runner.run(max_cycles=60)

    def test_non_mapping_non_callable_rejected(self, circuit, program):
        with pytest.raises(TypeError):
            GateRunner(circuit, program, inputs=42)
