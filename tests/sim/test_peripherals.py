"""Tests for GPIO ports, the aux timer and the address-space router."""

import pytest

from repro import memmap
from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.sim.peripherals import AuxTimer, InputPort, OutputPort
from repro.sim.soc import AddressSpace


class TestInputPort:
    def test_tainted_port_reads_tainted_unknown(self):
        port = InputPort("P1IN", memmap.P1IN, tainted=True)
        word = port.read_reg(memmap.P1IN)
        assert word.xmask == 0xFFFF
        assert word.tmask == 0xFFFF

    def test_untainted_port_reads_untainted_unknown(self):
        port = InputPort("P3IN", memmap.P3IN, tainted=False)
        word = port.read_reg(memmap.P3IN)
        assert word.xmask == 0xFFFF
        assert word.tmask == 0

    def test_reads_are_recorded(self):
        port = InputPort("P1IN", memmap.P1IN, tainted=True)
        port.read_reg(memmap.P1IN)
        port.read_reg(memmap.P1IN, address_taint=0xFFFF, definite=False)
        assert len(port.events) == 2
        assert port.events[0].definite
        assert not port.events[1].definite


class TestOutputPort:
    def test_definite_write_stores_value(self):
        port = OutputPort("P4OUT", memmap.P4OUT)
        port.write_reg(memmap.P4OUT, TWord.const(42), (ONE, 0))
        assert port.value.value == 42
        assert port.events[-1].definite

    def test_maybe_write_merges(self):
        port = OutputPort("P4OUT", memmap.P4OUT)
        port.write_reg(memmap.P4OUT, TWord.const(42), (ONE, 0))
        port.write_reg(memmap.P4OUT, TWord.const(43), (UNKNOWN, 1))
        assert port.value.xmask  # merged: 42-or-43
        assert port.value.tmask == 0xFFFF
        assert not port.events[-1].definite

    def test_zero_untainted_strobe_ignored(self):
        port = OutputPort("P4OUT", memmap.P4OUT)
        port.write_reg(memmap.P4OUT, TWord.const(42), (ZERO, 0))
        assert port.value.value == 0
        assert not port.events


class TestAuxTimer:
    def test_counts_when_enabled(self):
        timer = AuxTimer(memmap.TACTL, memmap.TAR)
        timer.write_reg(memmap.TACTL, TWord.const(1), (ONE, 0))
        for _ in range(5):
            timer.tick()
        assert timer.read_reg(memmap.TAR).value == 5

    def test_holds_when_disabled(self):
        timer = AuxTimer(memmap.TACTL, memmap.TAR)
        for _ in range(5):
            timer.tick()
        assert timer.read_reg(memmap.TAR).value == 0

    def test_snapshot_roundtrip(self):
        timer = AuxTimer(memmap.TACTL, memmap.TAR)
        timer.write_reg(memmap.TACTL, TWord.const(1), (ONE, 0))
        snap = timer.snapshot()
        timer.tick()
        assert not timer.covers(snap)
        timer.restore(snap)
        assert timer.covers(snap)


class TestAddressSpace:
    def test_ram_roundtrip(self):
        space = AddressSpace()
        space.write(TWord.const(0x200), TWord.const(1234))
        assert space.read(TWord.const(0x200)).value == 1234

    def test_port_read_routes(self):
        space = AddressSpace()
        word = space.read(TWord.const(memmap.P1IN))
        assert word.tmask == 0xFFFF  # P1 is the tainted input by default

        word = space.read(TWord.const(memmap.P3IN))
        assert word.tmask == 0

    def test_port_write_routes(self):
        space = AddressSpace()
        space.write(TWord.const(memmap.P4OUT), TWord.const(7))
        p4 = next(p for p in space.output_ports if p.name == "P4OUT")
        assert p4.value.value == 7

    def test_wdt_write_routes(self):
        space = AddressSpace()
        space.write(TWord.const(memmap.WDTCTL), TWord.const(0x5A03))
        assert space.watchdog.running

    def test_smeared_write_reaches_watchdog(self):
        """The fully unknown store of Figure 9 could clobber WDTCTL."""
        space = AddressSpace()
        space.write(
            TWord.unknown(16, tmask=0xFFFF), TWord.const(0, tmask=0xFFFF)
        )
        assert space.watchdog.corrupted

    def test_masked_write_cannot_reach_watchdog(self):
        space = AddressSpace()
        raw = TWord.unknown(16, tmask=0xFFFF)
        masked = (raw & TWord.const(memmap.TAINTED_RAM_MASK)) | TWord.const(
            memmap.TAINTED_RAM_BASE
        )
        space.write(masked, TWord.const(0, tmask=0xFFFF))
        assert not space.watchdog.corrupted
        assert space.ram.region_tainted(
            memmap.TAINTED_RAM_BASE, memmap.TAINTED_RAM_END
        )
        assert not space.ram.region_tainted(0, memmap.TAINTED_RAM_BASE)

    def test_smeared_read_merges_ports(self):
        space = AddressSpace()
        word = space.read(TWord.unknown(16))
        # The merge covers the tainted P1IN, so the result is tainted.
        assert word.tmask == 0xFFFF
        events = space.drain_port_events()
        assert any(e.port == "P1IN" and not e.definite for e in events)

    def test_drain_clears_events(self):
        space = AddressSpace()
        space.read(TWord.const(memmap.P1IN))
        assert space.drain_port_events()
        assert not space.drain_port_events()

    def test_snapshot_restore_roundtrip(self):
        space = AddressSpace()
        space.write(TWord.const(0x300), TWord.const(77))
        snap = space.snapshot()
        space.write(TWord.const(0x300), TWord.const(88))
        space.write(TWord.const(memmap.WDTCTL), TWord.const(0x5A03))
        space.restore(snap)
        assert space.read(TWord.const(0x300)).value == 77
        assert not space.watchdog.running

    def test_covers_and_merge(self):
        space = AddressSpace()
        space.write(TWord.const(0x300), TWord.const(1))
        snap = space.snapshot()
        assert space.covers(snap)
        space.write(TWord.const(0x300), TWord.const(2))
        assert not space.covers(snap)
        space.merge(snap)
        assert space.covers(snap)
        merged = space.read(TWord.const(0x300))
        assert merged.xmask == 3  # 1-or-2
