"""Dense vs event engine: lockstep differential tests.

The event engine's contract is *bit-identical* results -- not "close",
not "equivalent verdicts": the same codes array after every pass, the
same violations, the same report text.  These tests enforce that
contract at three granularities:

* SoC lockstep: two :class:`GateRunner`\\ s over the same workload,
  stepped cycle by cycle with the full 3027-net codes array compared
  after every cycle, for every forking Table 1 workload.
* Analysis equivalence: full :class:`TaintTracker` runs (verdict,
  violation tuples, normalized report text), including across
  checkpoint/save/resume and under ``jobs=2``.
* Random netlists: seeded random DAG circuits driven with random
  ternary/tainted input sequences, dense vs event codes compared after
  every combinational settle and clock edge.

A pickle round-trip regression pins the ``_DERIVED_CACHES`` audit:
id-keyed derived tables must not survive a pickle boundary.
"""

import pickle
import random
import re

import numpy as np
import pytest

from repro.core import TaintTracker
from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.logic.words import TWord
from repro.netlist.builder import CircuitBuilder, Sig
from repro.resilience import (
    AnalysisInterrupted,
    Checkpointer,
    read_checkpoint,
)
from repro.sim.compiled import CompiledCircuit
from repro.sim.runner import GateRunner
from repro.workloads.registry import BENCHMARKS, TABLE2_VIOLATORS


def _program(name):
    info = BENCHMARKS[name]
    return assemble(info.service_source, name=name)


def _normalize(report):
    """Report text minus the one legitimately nondeterministic field."""
    return re.sub(r"wall=\S+", "wall=<t>", report)


def _violation_key(violation):
    # Violation is a frozen dataclass: directly comparable.
    return violation


LOCKSTEP_CYCLES = 400


class TestSoCLockstep:
    """Cycle-by-cycle codes equality on the forking Table 1 workloads."""

    @pytest.mark.parametrize("name", TABLE2_VIOLATORS)
    def test_codes_bit_identical(self, name):
        program = _program(name)
        dense = GateRunner(compiled_cpu("dense"), program)
        event = GateRunner(compiled_cpu("event"), program)
        for cycle in range(LOCKSTEP_CYCLES):
            dense.step()
            event.step()
            assert np.array_equal(
                dense.soc.state.codes, event.soc.state.codes
            ), f"{name}: codes diverged at cycle {cycle}"

    def test_codes_bit_identical_nonforking(self):
        """A clean kernel too -- quiescent workloads exercise the
        zero-activity fast path the violators' forks never hit."""
        program = _program("mult")
        dense = GateRunner(compiled_cpu("dense"), program)
        event = GateRunner(compiled_cpu("event"), program)
        for cycle in range(LOCKSTEP_CYCLES):
            dense.step()
            event.step()
            assert np.array_equal(
                dense.soc.state.codes, event.soc.state.codes
            ), f"mult: codes diverged at cycle {cycle}"


#: Full-analysis results are expensive (seconds per engine); share them
#: across the verdict/violations/report assertions of this module.
_RESULT_CACHE = {}


def _analysis(name, engine):
    key = (name, engine)
    if key not in _RESULT_CACHE:
        tracker = TaintTracker(
            _program(name), circuit=compiled_cpu(engine)
        )
        _RESULT_CACHE[key] = tracker.run()
    return _RESULT_CACHE[key]


class TestAnalysisEquivalence:
    """Full TaintTracker runs must be indistinguishable per engine."""

    @pytest.mark.parametrize("name", TABLE2_VIOLATORS)
    def test_verdict_violations_report(self, name):
        dense = _analysis(name, "dense")
        event = _analysis(name, "event")
        assert event.verdict == dense.verdict
        assert list(event.violations) == list(dense.violations)
        assert event.stats.paths == dense.stats.paths
        assert event.stats.forks == dense.stats.forks
        assert event.stats.merges == dense.stats.merges
        assert (
            event.stats.cycles_simulated == dense.stats.cycles_simulated
        )
        assert _normalize(event.report()) == _normalize(dense.report())


FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""


def _forky_tracker(engine, **kwargs):
    program = assemble(FORKY, name="forky")
    return TaintTracker(
        program, circuit=compiled_cpu(engine), **kwargs
    )


class TestCheckpointEquivalence:
    """Interrupt the event-engine analysis, resume it, and compare the
    stitched result against an uninterrupted dense baseline."""

    def _interrupt_after(self, tracker, paths):
        original = tracker._explore_path
        fired = []

        def wrapper(*args, **kwargs):
            original(*args, **kwargs)
            if not fired and tracker.stats.paths >= paths:
                fired.append(True)
                tracker.request_interrupt("test")

        tracker._explore_path = wrapper
        return tracker

    def test_resume_matches_dense_baseline(self, tmp_path):
        dense = _forky_tracker("dense").run()

        ckpt = tmp_path / "event.ckpt"
        interrupted = self._interrupt_after(
            _forky_tracker("event", checkpointer=Checkpointer(ckpt)),
            paths=1,
        )
        with pytest.raises(AnalysisInterrupted):
            interrupted.run()
        assert ckpt.exists()

        fresh = _forky_tracker("event")
        payload = read_checkpoint(ckpt, fresh.config_digest())
        fresh.restore_checkpoint(payload)
        event = fresh.run()

        assert event.verdict == dense.verdict
        assert list(event.violations) == list(dense.violations)
        assert event.stats.paths == dense.stats.paths
        assert _normalize(event.report()) == _normalize(dense.report())

    def test_table1_resume_matches(self, tmp_path):
        """The same interrupt/resume stitch on a real forking workload."""
        name = "binSearch"
        dense = _analysis(name, "dense")

        ckpt = tmp_path / "table1.ckpt"
        interrupted = self._interrupt_after(
            TaintTracker(
                _program(name),
                circuit=compiled_cpu("event"),
                checkpointer=Checkpointer(ckpt),
            ),
            paths=2,
        )
        with pytest.raises(AnalysisInterrupted):
            interrupted.run()

        fresh = TaintTracker(
            _program(name), circuit=compiled_cpu("event")
        )
        payload = read_checkpoint(ckpt, fresh.config_digest())
        fresh.restore_checkpoint(payload)
        event = fresh.run()

        assert event.verdict == dense.verdict
        assert list(event.violations) == list(dense.violations)
        assert _normalize(event.report()) == _normalize(dense.report())


class TestParallelEquivalence:
    """--jobs parallel exploration must stay engine-agnostic."""

    def test_jobs2_matches_dense_serial(self):
        name = "tHold"
        dense = _analysis(name, "dense")
        event = TaintTracker(
            _program(name), circuit=compiled_cpu("event"), jobs=2
        ).run()
        assert event.verdict == dense.verdict
        assert list(event.violations) == list(dense.violations)
        assert event.stats.paths == dense.stats.paths
        assert _normalize(event.report()) == _normalize(dense.report())


# ---------------------------------------------------------------------------
# Random netlists
# ---------------------------------------------------------------------------
def random_netlist(seed, num_inputs=5, num_regs=4, num_gates=60):
    """A seeded random layered DAG with registers and a reset."""
    rng = random.Random(seed)
    b = CircuitBuilder(f"rand{seed}")
    rst = b.input("rst", 1)[0]
    pool = [b.input(f"in{i}", 1)[0] for i in range(num_inputs)]
    regs = [b.reg(f"r{i}", 1) for i in range(num_regs)]
    pool += [r.q[0] for r in regs]
    pool += [b.bit0(), b.bit1()]
    for _ in range(num_gates):
        op = rng.choice(
            ("not", "and", "or", "xor", "xnor", "nand", "nor", "mux")
        )
        a, c, d = (rng.choice(pool) for _ in range(3))
        if op == "not":
            out = b.not_bit(a)
        elif op == "and":
            out = b.and_bit(a, c)
        elif op == "or":
            out = b.or_bit(a, c)
        elif op == "xor":
            out = b.xor_bit(a, c)
        elif op == "xnor":
            out = b.xnor_bit(a, c)
        elif op == "nand":
            out = b.nand_bit(a, c)
        elif op == "nor":
            out = b.nor_bit(a, c)
        else:
            out = b.mux_bit(a, c, d)
        pool.append(out)
    for reg in regs:
        b.drive(reg, Sig([rng.choice(pool)]), rst=rst)
    b.output("out", Sig([rng.choice(pool) for _ in range(4)]))
    return b.build()


def _random_word(rng):
    """A random 1-bit ternary word, sometimes tainted, sometimes X."""
    roll = rng.random()
    if roll < 0.2:
        return TWord(0, 1, rng.randrange(2), 1)  # unknown
    return TWord(rng.randrange(2), 0, rng.randrange(2), 1)


class TestRandomNetlists:
    @pytest.mark.parametrize("seed", range(8))
    def test_lockstep_on_random_dag(self, seed):
        netlist = random_netlist(seed)
        dense = CompiledCircuit(netlist, engine="dense")
        event = CompiledCircuit(netlist, engine="event")
        dstate = dense.new_state()
        estate = event.new_state()
        rng = random.Random(1000 + seed)
        inputs = [f"in{i}" for i in range(5)]
        for cycle in range(40):
            rst = TWord.const(1 if cycle == 0 else 0, 1)
            for circuit, state in ((dense, dstate), (event, estate)):
                circuit.set_input(state, "rst", rst)
            # Change a random subset of inputs (sometimes none: the
            # quiescent pass must also match).
            for name in inputs:
                if rng.random() < 0.6:
                    word = _random_word(rng)
                    dense.set_input(dstate, name, word)
                    event.set_input(estate, name, word)
            dense.eval_combinational(dstate)
            event.eval_combinational(estate)
            assert np.array_equal(dstate.codes, estate.codes), (
                f"seed {seed}: diverged after eval, cycle {cycle}"
            )
            dense.clock_edge(dstate)
            event.clock_edge(estate)
            dense.eval_combinational(dstate)
            event.eval_combinational(estate)
            assert np.array_equal(dstate.codes, estate.codes), (
                f"seed {seed}: diverged after clock edge, cycle {cycle}"
            )


# ---------------------------------------------------------------------------
# Pickle round-trip (the _DERIVED_CACHES audit)
# ---------------------------------------------------------------------------
class TestPickleRoundTrip:
    def test_derived_caches_do_not_cross_pickle(self):
        netlist = random_netlist(3)
        circuit = CompiledCircuit(netlist, engine="event")
        state = circuit.new_state()
        circuit.set_input(state, "rst", TWord.const(0, 1))
        for i in range(5):
            circuit.set_input(state, f"in{i}", TWord.const(i & 1, 1))
        circuit.eval_combinational(state)
        # The lazy caches exist in the source process...
        assert getattr(circuit, "_ev_tables", None) is not None
        circuit.cone_plan(["out"])

        clone = pickle.loads(pickle.dumps(circuit))
        # ...and must be absent after the round trip: their keys embed
        # object ids from the source process.
        for name in CompiledCircuit._DERIVED_CACHES:
            assert getattr(clone, name, None) is None, name
        assert clone._plan_totals == {}
        assert clone._counter_cache == {}
        assert clone.engine == "event"

    def test_pickled_circuit_still_bit_identical(self):
        netlist = random_netlist(4)
        dense = CompiledCircuit(netlist, engine="dense")
        event = pickle.loads(
            pickle.dumps(CompiledCircuit(netlist, engine="event"))
        )
        dstate = dense.new_state()
        estate = event.new_state()
        rng = random.Random(99)
        for cycle in range(20):
            dense.set_input(dstate, "rst", TWord.const(0, 1))
            event.set_input(estate, "rst", TWord.const(0, 1))
            for i in range(5):
                word = _random_word(rng)
                dense.set_input(dstate, f"in{i}", word)
                event.set_input(estate, f"in{i}", word)
            dense.eval_combinational(dstate)
            event.eval_combinational(estate)
            dense.clock_edge(dstate)
            event.clock_edge(estate)
            dense.eval_combinational(dstate)
            event.eval_combinational(estate)
            assert np.array_equal(dstate.codes, estate.codes), (
                f"pickled circuit diverged at cycle {cycle}"
            )

    def test_event_state_survives_circuit_state_pickle(self):
        """CircuitState round-trips with its dirty bookkeeping intact:
        a resumed state must not silently skip pending work."""
        netlist = random_netlist(5)
        event = CompiledCircuit(netlist, engine="event")
        dense = CompiledCircuit(netlist, engine="dense")
        estate = event.new_state()
        dstate = dense.new_state()
        rng = random.Random(7)
        for circuit, state in ((event, estate), (dense, dstate)):
            circuit.set_input(state, "rst", TWord.const(0, 1))
        for i in range(5):
            word = _random_word(rng)
            event.set_input(estate, f"in{i}", word)
            dense.set_input(dstate, f"in{i}", word)
        event.eval_combinational(estate)
        dense.eval_combinational(dstate)

        resumed = pickle.loads(pickle.dumps(estate))
        # Continue both; the resumed event state must keep matching.
        for cycle in range(10):
            word = _random_word(rng)
            event.set_input(resumed, "in0", word)
            dense.set_input(dstate, "in0", word)
            event.eval_combinational(resumed)
            dense.eval_combinational(dstate)
            event.clock_edge(resumed)
            dense.clock_edge(dstate)
            event.eval_combinational(resumed)
            dense.eval_combinational(dstate)
            assert np.array_equal(resumed.codes, dstate.codes), (
                f"resumed state diverged at cycle {cycle}"
            )
