"""Tests for the compiled gate-level GLIFT simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.netlist.builder import CircuitBuilder, Sig
from repro.sim.compiled import (
    CODE_0,
    CODE_1,
    CODE_X,
    CompiledCircuit,
    code_of,
    decode_code,
)


def adder_circuit(width=4):
    builder = CircuitBuilder("adder")
    a = builder.input("a", width)
    b = builder.input("b", width)
    total, cout = builder.add(a, b)
    builder.output("sum", total)
    builder.output("cout", Sig([cout]))
    return CompiledCircuit(builder.build())


def figure7_circuit():
    """The paper's Figure 7 FSM: S' = S xor In, DFF with reset."""
    builder = CircuitBuilder("fig7")
    in_sig = builder.input("in", 1)
    rst = builder.input("rst", 1)
    state = builder.reg("S", 1)
    next_state = builder.xor_(state.q, in_sig)
    builder.drive(state, next_state, rst=rst[0])
    builder.output("S", state.q)
    builder.output("S_next", Sig([builder.netlist.dffs[0].d]))
    return CompiledCircuit(builder.build())


class TestCodes:
    def test_roundtrip(self):
        for value in (ZERO, ONE, UNKNOWN):
            for taint in (0, 1):
                assert decode_code(code_of(value, taint)) == (value, taint)

    def test_constants(self):
        assert CODE_0 == code_of(ZERO, 0)
        assert CODE_1 == code_of(ONE, 0)
        assert CODE_X == code_of(UNKNOWN, 0)


class TestCombinational:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_adder_concrete(self, a, b):
        circuit = adder_circuit()
        state = circuit.new_state()
        circuit.set_input(state, "a", TWord.const(a, 4))
        circuit.set_input(state, "b", TWord.const(b, 4))
        circuit.eval_combinational(state)
        assert circuit.read_output(state, "sum").value == (a + b) & 0xF
        assert circuit.read_output(state, "cout").value == (a + b) >> 4

    @given(
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_adder_covers_tword(self, abits, ax, at, bbits, bx, bt):
        """Gate-level GLIFT must *cover* TWord's word-level GLIFT.

        The ripple adder built from discrete gates loses some reconvergent
        precision that the word-level monolithic full-adder tables keep
        (e.g. ``maj(X, 1, 1)`` is 1 monolithically but X when composed from
        AND/OR of correlated X terms), so gate-level results are allowed to
        be strictly more conservative -- never less.
        """
        circuit = adder_circuit()
        word_a = TWord(abits, ax, at, 4)
        word_b = TWord(bbits, bx, bt, 4)
        state = circuit.new_state()
        circuit.set_input(state, "a", word_a)
        circuit.set_input(state, "b", word_b)
        circuit.eval_combinational(state)
        gate_sum = circuit.read_output(state, "sum")
        ref_sum, ref_cout, _ = word_a.add(word_b)
        assert gate_sum.covers(ref_sum)
        gate_cout = circuit.read_output(state, "cout")
        assert gate_cout.covers(TWord(ref_cout[0] & 1,
                                      1 if ref_cout[0] == 2 else 0,
                                      ref_cout[1], 1))
        # On fully concrete inputs the two agree exactly.
        if word_a.is_concrete and word_b.is_concrete:
            assert gate_sum == ref_sum

    def test_taint_masking_through_gates(self):
        """An untainted AND-mask strips taint at gate level (Figure 9 core)."""
        builder = CircuitBuilder("m")
        a = builder.input("a", 4)
        masked = builder.and_(a, builder.const(0b0011, 4))
        builder.output("out", masked)
        circuit = CompiledCircuit(builder.build())
        state = circuit.new_state()
        circuit.set_input(state, "a", TWord.unknown(4, tmask=0xF))
        circuit.eval_combinational(state)
        out = circuit.read_output(state, "out")
        assert out.tmask == 0b0011
        assert out.xmask == 0b0011
        assert out.bits == 0

    def test_taint_fractions(self):
        circuit = adder_circuit()
        state = circuit.new_state()
        circuit.set_input(state, "a", TWord.const(0, 4, tmask=0xF))
        circuit.set_input(state, "b", TWord.const(0, 4))
        circuit.eval_combinational(state)
        assert 0.0 < circuit.taint_fraction(state) < 1.0
        assert circuit.unknown_fraction(state) == 0.0


class TestSequential:
    def test_counter_counts(self):
        builder = CircuitBuilder("counter")
        rst = builder.input("rst", 1)
        count = builder.reg("count", 4)
        builder.drive(count, builder.inc(count.q), rst=rst[0])
        builder.output("count", count.q)
        circuit = CompiledCircuit(builder.build())
        state = circuit.new_state()

        def cycle(reset):
            circuit.set_input(state, "rst", TWord.const(reset, 1))
            circuit.eval_combinational(state)
            circuit.clock_edge(state)

        cycle(1)
        for expected in (0, 1, 2, 3, 4):
            assert circuit.read_output(state, "count").value == expected
            cycle(0)

    def test_initial_state_is_untainted_x(self):
        circuit = figure7_circuit()
        state = circuit.new_state()
        assert circuit.read_output(state, "S").bit(0) == (UNKNOWN, 0)

    def test_dff_state_roundtrip(self):
        circuit = figure7_circuit()
        state = circuit.new_state()
        snapshot = circuit.dff_state(state)
        circuit.set_input(state, "in", TWord.const(1, 1))
        circuit.set_input(state, "rst", TWord.const(1, 1))
        circuit.eval_combinational(state)
        circuit.clock_edge(state)
        assert circuit.read_output(state, "S").bit(0) == (ZERO, 0)
        circuit.set_dff_state(state, snapshot)
        assert circuit.read_output(state, "S").bit(0) == (UNKNOWN, 0)


class TestFigure7:
    """Replays the paper's Figure 7 execution tree on real gates."""

    def run_cycle(self, circuit, state, in_word, rst_word):
        circuit.set_input(state, "in", in_word)
        circuit.set_input(state, "rst", rst_word)
        circuit.eval_combinational(state)
        next_s = circuit.read_output(state, "S_next").bit(0)
        circuit.clock_edge(state)
        return next_s

    def common_prefix(self):
        circuit = figure7_circuit()
        state = circuit.new_state()
        # Cycle 0: unknown untainted state, untainted reset.
        assert circuit.read_output(state, "S").bit(0) == (UNKNOWN, 0)
        self.run_cycle(state=state, circuit=circuit,
                       in_word=TWord.unknown(1), rst_word=TWord.const(1, 1))
        # Cycle 1: S = 0 untainted; In = untainted 1.
        assert circuit.read_output(state, "S").bit(0) == (ZERO, 0)
        self.run_cycle(state=state, circuit=circuit,
                       in_word=TWord.const(1, 1), rst_word=TWord.const(0, 1))
        # Cycle 2: S = 1 untainted; In = tainted 0.
        assert circuit.read_output(state, "S").bit(0) == (ONE, 0)
        self.run_cycle(state=state, circuit=circuit,
                       in_word=TWord.const(0, 1, tmask=1),
                       rst_word=TWord.const(0, 1))
        # Cycle 3 starts with S = 1 *tainted* on both branches.
        assert circuit.read_output(state, "S").bit(0) == (ONE, 1)
        return circuit, state

    def test_left_path_tainted_reset_keeps_taint(self):
        circuit, state = self.common_prefix()
        # Cycle 3: In unknown untainted -> S becomes X tainted.
        self.run_cycle(circuit, state, TWord.unknown(1), TWord.const(0, 1))
        assert circuit.read_output(state, "S").bit(0) == (UNKNOWN, 1)
        # Cycle 4: *tainted* reset: value clears, taint stays.
        self.run_cycle(
            circuit, state, TWord.unknown(1), TWord.const(1, 1, tmask=1)
        )
        assert circuit.read_output(state, "S").bit(0) == (ZERO, 1)

    def test_right_path_untainted_reset_clears_taint(self):
        circuit, state = self.common_prefix()
        # Cycle 3: In tainted 1 -> S = 0 tainted.
        self.run_cycle(
            circuit, state, TWord.const(1, 1, tmask=1), TWord.const(0, 1)
        )
        assert circuit.read_output(state, "S").bit(0) == (ZERO, 1)
        # Cycle 4: untainted reset fully de-taints.
        self.run_cycle(circuit, state, TWord.unknown(1), TWord.const(1, 1))
        assert circuit.read_output(state, "S").bit(0) == (ZERO, 0)
