"""Tests for the watchdog timer model."""

import pytest

from repro.logic.ternary import ONE, UNKNOWN, ZERO
from repro.logic.words import TWord
from repro.memmap import WDTCTL
from repro.sim.watchdog import WDT_INTERVALS, Watchdog


def armed_watchdog(interval_select=3):
    wdt = Watchdog(WDTCTL)
    wdt.write_reg(WDTCTL, TWord.const(0x5A00 | interval_select), (ONE, 0))
    return wdt


class TestArming:
    def test_starts_held(self):
        wdt = Watchdog(WDTCTL)
        assert not wdt.running
        for _ in range(100):
            assert wdt.tick() == (ZERO, 0)

    def test_valid_write_arms(self):
        wdt = armed_watchdog(interval_select=3)
        assert wdt.running
        assert wdt.cycles_until_expiry() == WDT_INTERVALS[3] == 64

    def test_interval_selects(self):
        for select, cycles in enumerate(WDT_INTERVALS):
            wdt = armed_watchdog(interval_select=select)
            assert wdt.cycles_until_expiry() == cycles

    def test_hold_bit_stops(self):
        wdt = armed_watchdog()
        wdt.write_reg(WDTCTL, TWord.const(0x5A80), (ONE, 0))
        assert not wdt.running
        assert wdt.cycles_until_expiry() is None

    def test_wrong_password_fires_reset(self):
        wdt = Watchdog(WDTCTL)
        wdt.write_reg(WDTCTL, TWord.const(0x1234), (ONE, 0))
        assert wdt.tick() == (ONE, 0)
        assert wdt.tick() == (ZERO, 0)


class TestExpiry:
    def test_expires_after_interval(self):
        wdt = armed_watchdog(interval_select=3)
        for _ in range(63):
            assert wdt.tick() == (ZERO, 0)
        assert wdt.tick() == (ONE, 0)  # untainted POR
        # reloads and keeps going
        assert wdt.cycles_until_expiry() == 64

    def test_rewrite_reloads_counter(self):
        wdt = armed_watchdog(interval_select=3)
        for _ in range(60):
            wdt.tick()
        wdt.write_reg(WDTCTL, TWord.const(0x5A03), (ONE, 0))
        for _ in range(63):
            assert wdt.tick() == (ZERO, 0)
        assert wdt.tick() == (ONE, 0)

    def test_fast_forward_matches_ticks(self):
        slow = armed_watchdog(interval_select=3)
        fast = armed_watchdog(interval_select=3)
        outputs = [slow.tick() for _ in range(64)]
        assert fast.fast_forward(64) == outputs[-1] == (ONE, 0)
        assert slow.counter == fast.counter


class TestTaintedWatchdog:
    """The paper: only an *untainted* watchdog can de-taint the pipeline."""

    def test_tainted_write_corrupts(self):
        wdt = armed_watchdog()
        wdt.write_reg(WDTCTL, TWord.const(0x5A03, tmask=0x1), (ONE, 0))
        assert wdt.corrupted
        assert wdt.tick() == (ZERO, 1)  # even "no reset" is tainted now

    def test_unknown_write_corrupts(self):
        wdt = armed_watchdog()
        wdt.write_reg(WDTCTL, TWord.unknown(16), (ONE, 0))
        assert wdt.corrupted

    def test_maybe_write_via_smeared_address_corrupts(self):
        """A store with unknown address that *could* hit WDTCTL."""
        wdt = armed_watchdog()
        wdt.write_reg(
            WDTCTL, TWord.const(0), (UNKNOWN, 1), address_taint=0xFFFF
        )
        assert wdt.corrupted

    def test_strobe_zero_untainted_harmless(self):
        wdt = armed_watchdog()
        wdt.write_reg(WDTCTL, TWord.unknown(16), (ZERO, 0))
        assert not wdt.corrupted

    def test_read_through_tainted_address(self):
        wdt = armed_watchdog()
        word = wdt.read_reg(WDTCTL, address_taint=0xFFFF)
        assert word.tmask == 0xFFFF


class TestStateManagement:
    def test_snapshot_restore(self):
        wdt = armed_watchdog()
        snap = wdt.snapshot()
        for _ in range(10):
            wdt.tick()
        wdt.restore(snap)
        assert wdt.cycles_until_expiry() == 64

    def test_covers_same_state(self):
        wdt = armed_watchdog()
        assert wdt.covers(wdt.snapshot())

    def test_covers_rejects_counter_mismatch(self):
        wdt = armed_watchdog()
        snap = wdt.snapshot()
        wdt.tick()
        assert not wdt.covers(snap)

    def test_merge_diverging_counters_keeps_latest(self):
        """The deterministic-timer abstraction: merged paths forked at a
        branch share an absolute expiry, so the merge keeps the latest
        remaining time instead of losing determinism."""
        wdt = armed_watchdog()
        wdt.tick()
        wdt.tick()
        other = armed_watchdog()
        other.tick()
        longest = other.cycles_until_expiry()
        wdt.merge(other.snapshot())
        assert not wdt.corrupted
        assert wdt.cycles_until_expiry() == longest

    def test_covers_with_counter_ordering(self):
        wdt = armed_watchdog()
        snap_full = wdt.snapshot()
        wdt.tick()
        assert not wdt.covers(snap_full)  # less time left than stored
        later = armed_watchdog()
        later.tick()
        assert armed_watchdog().covers(later.snapshot())

    def test_merge_identical_is_clean(self):
        wdt = armed_watchdog()
        wdt.merge(armed_watchdog().snapshot())
        assert not wdt.corrupted
        assert wdt.running
