"""SoC-level integration tests: reset, ROM, events, snapshots."""

import pytest

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.logic.ternary import ONE, ZERO
from repro.logic.words import TWord
from repro.sim.runner import GateRunner
from repro.sim.soc import Rom, SoC


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


class TestRom:
    def test_concrete_read(self):
        rom = Rom()
        rom.load(0x10, [0xDEAD, 0xBEEF])
        assert rom.read(TWord.const(0x10)).value == 0xDEAD
        assert rom.read(TWord.const(0x11)).value == 0xBEEF

    def test_tainted_code_words(self):
        rom = Rom()
        rom.load(0, [0x1234], tmask=0xFFFF)
        word = rom.read(TWord.const(0))
        assert word.value == 0x1234
        assert word.tmask == 0xFFFF

    def test_tainted_address_taints_fetch(self):
        rom = Rom()
        rom.load(0, [0x1234])
        word = rom.read(TWord.const(0, tmask=1))
        assert word.bits == 0x1234
        assert word.tmask == 0xFFFF

    def test_unknown_address_merges(self):
        rom = Rom()
        rom.load(0, [0xFF00, 0x00FF])
        word = rom.read(TWord(0, 1, 0, 16))  # address 0 or 1
        assert word.xmask == 0xFFFF  # the two words share no bits

    def test_unmatchable_pattern(self):
        rom = Rom(size=16)
        word = rom.read(TWord(0x8000, 0x00FF, 0, 16))
        assert word.xmask == 0xFFFF


class TestSoCBasics:
    def test_reset_lands_at_vector_zero(self, circuit):
        soc = SoC(circuit)
        soc.reset()
        assert soc.pc() == TWord.const(0)

    def test_reset_disarms_watchdog(self, circuit):
        soc = SoC(circuit)
        soc.space.watchdog.write_reg(
            soc.space.watchdog.address, TWord.const(0x5A03), (ONE, 0)
        )
        assert soc.space.watchdog.running
        soc.reset()
        assert not soc.space.watchdog.running

    def test_events_report_instruction_stream(self, circuit):
        program = assemble("mov #7, r4\nhalt")
        runner = GateRunner(circuit, program)
        events = runner.step()
        assert events.pc.value == 0
        assert events.instruction.value == program.word_at(0)

    def test_write_event_contains_footprint(self, circuit):
        program = assemble(
            "mov #0x200, r4\nmov #9, 0(r4)\nhalt"
        )
        runner = GateRunner(circuit, program)
        write = None
        for _ in range(20):
            events = runner.step()
            if events.write is not None:
                write = events.write
                break
        assert write is not None
        assert write.address.value == 0x200
        assert write.data.value == 9
        assert write.ram_match[0x200]
        assert write.ram_match.sum() == 1

    def test_snapshot_restore_roundtrip(self, circuit):
        program = assemble("mov #1, r4\nmov #2, r5\nhalt")
        runner = GateRunner(circuit, program)
        snapshot = runner.soc.snapshot()
        runner.run(max_cycles=30)
        assert runner.register(4).value == 1
        runner.soc.restore(snapshot)
        assert runner.soc.pc() == TWord.const(0)
        # replay reaches the same state
        runner.run(max_cycles=30)
        assert runner.register(4).value == 1
        assert runner.register(5).value == 2

    def test_force_pc(self, circuit):
        program = assemble("nop\nnop\ntarget:\nmov #9, r4\nhalt")
        runner = GateRunner(circuit, program)
        runner.soc.force_pc(program.labels["target"])
        runner.run(max_cycles=20)
        assert runner.register(4).value == 9

    def test_watchdog_por_resets_cpu(self, circuit):
        program = assemble(
            """
                mov #0x5a03, &WDTCTL
                mov #1, r4
            spin:
                jmp spin
            """
        )
        runner = GateRunner(circuit, program)
        for _ in range(80):
            events = runner.step()
            if events.reset[0] == ONE:
                break
        else:
            pytest.fail("watchdog POR never arrived")
        runner.step()
        assert runner.soc.pc().value in (0, 1)  # back at the vector
