"""Property tests for the event engine's dirty-set bookkeeping.

Two properties pin the engine's core invariants on random DAG
netlists:

* **Propagation closure** -- perturbing any single input net of a
  settled event state and re-settling must reach exactly the state a
  full dense pass computes from the same inputs.  If the dirty-set
  sweep ever under-marks fanout, this catches it at the first netlist
  where the missed gate matters.
* **Quiescence soundness** -- re-evaluating a settled state with no
  input change must evaluate *zero* gates (not merely produce the same
  codes): the engine's claimed speedup is exactly this property.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.words import TWord
from repro.netlist.builder import CircuitBuilder, Sig
from repro.sim.compiled import CompiledCircuit

NUM_INPUTS = 5


def build_random_dag(seed, num_gates):
    """A seeded random combinational DAG (no registers: the properties
    quantify over single-pass settling)."""
    rng = random.Random(seed)
    b = CircuitBuilder(f"prop{seed}")
    pool = [b.input(f"in{i}", 1)[0] for i in range(NUM_INPUTS)]
    pool += [b.bit0(), b.bit1()]
    for _ in range(num_gates):
        op = rng.choice(("not", "and", "or", "xor", "mux", "nand"))
        a, c, d = (rng.choice(pool) for _ in range(3))
        if op == "not":
            out = b.not_bit(a)
        elif op == "and":
            out = b.and_bit(a, c)
        elif op == "or":
            out = b.or_bit(a, c)
        elif op == "xor":
            out = b.xor_bit(a, c)
        elif op == "nand":
            out = b.nand_bit(a, c)
        else:
            out = b.mux_bit(a, c, d)
        pool.append(out)
    b.output("out", Sig(pool[-4:]))
    return b.build()


def code_word(code):
    """A 1-bit TWord carrying exactly the given net code."""
    value, taint = code >> 1, code & 1
    if value == 2:
        return TWord(0, 1, taint, 1)
    return TWord(value, 0, taint, 1)


input_codes = st.lists(
    st.sampled_from([0, 1, 2, 3, 4, 5]),
    min_size=NUM_INPUTS,
    max_size=NUM_INPUTS,
)


class TestPropagationClosure:
    @given(
        seed=st.integers(0, 200),
        num_gates=st.integers(5, 80),
        initial=input_codes,
        which=st.integers(0, NUM_INPUTS - 1),
        new_code=st.sampled_from([0, 1, 2, 3, 4, 5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_input_perturbation_reaches_dense_fixpoint(
        self, seed, num_gates, initial, which, new_code
    ):
        netlist = build_random_dag(seed, num_gates)
        event = CompiledCircuit(netlist, engine="event")
        estate = event.new_state()
        for i, code in enumerate(initial):
            event.set_input(estate, f"in{i}", code_word(code))
        event.eval_combinational(estate)

        # Perturb exactly one input net, re-settle the event state.
        event.set_input(estate, f"in{which}", code_word(new_code))
        event.eval_combinational(estate)

        # Reference: a dense pass over the same final inputs.
        dense = CompiledCircuit(netlist, engine="dense")
        dstate = dense.new_state()
        final = list(initial)
        final[which] = new_code
        for i, code in enumerate(final):
            dense.set_input(dstate, f"in{i}", code_word(code))
        dense.eval_combinational(dstate)

        assert np.array_equal(estate.codes, dstate.codes)


class TestQuiescenceSoundness:
    @given(
        seed=st.integers(0, 200),
        num_gates=st.integers(5, 80),
        initial=input_codes,
    )
    @settings(max_examples=60, deadline=None)
    def test_noop_write_evaluates_zero_gates(
        self, seed, num_gates, initial
    ):
        netlist = build_random_dag(seed, num_gates)
        event = CompiledCircuit(netlist, engine="event")
        state = event.new_state()
        for i, code in enumerate(initial):
            event.set_input(state, f"in{i}", code_word(code))
        event.eval_combinational(state)

        # Rewrite the same values -- a no-op -- and re-evaluate.
        before = state.codes.copy()
        for i, code in enumerate(initial):
            event.set_input(state, f"in{i}", code_word(code))
        event.eval_combinational(state)

        assert state.ev.last_evals == 0
        assert state.ev.last_groups == 0
        assert np.array_equal(state.codes, before)

    @given(
        seed=st.integers(0, 200),
        num_gates=st.integers(5, 80),
        initial=input_codes,
    )
    @settings(max_examples=30, deadline=None)
    def test_settled_state_stays_settled(self, seed, num_gates, initial):
        """No writes at all: repeated evaluation stays at zero work."""
        netlist = build_random_dag(seed, num_gates)
        event = CompiledCircuit(netlist, engine="event")
        state = event.new_state()
        for i, code in enumerate(initial):
            event.set_input(state, f"in{i}", code_word(code))
        event.eval_combinational(state)
        for _ in range(3):
            event.eval_combinational(state)
            assert state.ev.last_evals == 0
