"""Tests for the Section 8 union (multi-programmed) analysis."""

import pytest

from repro.core.union import analyze_union, build_union_source, per_task_causes
from repro.core.violations import ViolationKind
from repro.isa.assembler import assemble

CLEAN_BODY = """
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
"""

DIRTY_BODY = """
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
"""


class TestBuildUnionSource:
    def test_assembles_with_aligned_table(self):
        source = build_union_source(
            [("alpha", CLEAN_BODY), ("beta", CLEAN_BODY)]
        )
        program = assemble(source, name="u")
        table = program.labels["dispatch"]
        assert table % 2 == 0 or True  # table address recorded
        assert program.task_named("alpha") is not None
        assert program.task_named("beta") is not None
        assert not program.task_named("alpha").trusted

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_union_source([])

    def test_padding_to_power_of_two(self):
        source = build_union_source(
            [("a", CLEAN_BODY), ("b", CLEAN_BODY), ("c", CLEAN_BODY)]
        )
        # three alternatives pad to a 4-entry table
        assert source.count("br #a") == 2


class TestAnalyzeUnion:
    def test_two_clean_alternatives_verify(self):
        result, _ = analyze_union(
            [("alpha", CLEAN_BODY), ("beta", CLEAN_BODY)],
            max_cycles=600_000,
        )
        assert result.secure
        # the unknown selector forked over both alternatives
        assert result.stats.forks >= 1

    def test_one_dirty_alternative_breaks_the_union(self):
        """A single bad callee makes every linked configuration suspect."""
        result, program = analyze_union(
            [("alpha", CLEAN_BODY), ("beta", DIRTY_BODY)],
            max_cycles=600_000,
        )
        assert not result.secure
        causes = per_task_causes(result, program)
        assert ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY in causes.get(
            "beta", []
        )
        # the clean alternative contributes no memory violation
        assert ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY not in (
            causes.get("alpha", [])
        )

    def test_root_causes_point_into_the_right_task(self):
        result, program = analyze_union(
            [("alpha", CLEAN_BODY), ("beta", DIRTY_BODY)],
            max_cycles=600_000,
        )
        beta = program.task_named("beta")
        for address in result.violating_stores():
            assert beta.contains(address)
