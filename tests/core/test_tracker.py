"""End-to-end tests for Algorithm 1 on the gate-level SoC.

These replay the paper's motivating scenarios (Figures 3-5, 8) as full
analyses and check the exploration machinery (fork, merge, POR
convergence, watchdog fast-forward).
"""

import pytest

from repro.core import TaintTracker, default_policy, secret_policy
from repro.core.labels import SecurityPolicy
from repro.core.violations import ViolationKind
from repro.isa.assembler import assemble

SYS_WRAP = """
.task sys trusted
start:
    mov #0x0FFE, sp
    call #app
    jmp start
.task app untrusted
app:
{body}
    ret
"""


def analyze(body, name="t", policy=None, **kwargs):
    program = assemble(SYS_WRAP.format(body=body), name=name)
    return TaintTracker(program, policy=policy, **kwargs).run()


class TestCleanPrograms:
    def test_figure3_clean_application(self):
        """Tainted task touching only tainted resources verifies SECURE."""
        result = analyze(
            """
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    mov @r4, r6
    mov r6, &P2OUT
            """
        )
        assert result.secure
        assert result.violations == []

    def test_trusted_code_may_use_untainted_ports(self):
        program = assemble(
            ".task sys trusted\n"
            "    mov &P3IN, r4\n"
            "    mov r4, &P4OUT\n"
            "    halt\n",
            name="trusted_io",
        )
        result = TaintTracker(program).run()
        # unknown (but untainted) branch-free data flow: secure
        assert result.secure

    def test_untrusted_task_may_not_write_untainted_port(self):
        """Condition 5 forbids tainted code writing untainted ports even
        with untainted data."""
        result = analyze("    mov #5, r4\n    mov r4, &P4OUT")
        assert not result.secure
        assert 5 in result.violated_conditions()

    def test_restart_loop_converges(self):
        result = analyze("    nop\n    nop")
        assert result.secure
        assert result.stats.paths == 1
        assert result.stats.terminations_by_merge >= 1

    def test_halt_without_watchdog_ends(self):
        program = assemble(
            ".task sys trusted\n    mov #1, r4\n    halt\n", name="h"
        )
        result = TaintTracker(program).run()
        assert result.secure
        assert any(
            node.end_reason == "halt" for node in result.tree.nodes.values()
        )


class TestViolatingPrograms:
    def test_figure4_unmasked_store(self):
        result = analyze(
            """
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
            """,
            name="fig4",
        )
        assert not result.secure
        assert result.violated_conditions() == {1, 2}
        assert len(result.violating_stores()) == 1
        kinds = {v.kind for v in result.violations}
        assert ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY in kinds
        assert ViolationKind.WATCHDOG_TAINTED in kinds

    def test_figure5_masked_store_is_secure(self):
        result = analyze(
            """
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
            """,
            name="fig5",
        )
        assert result.secure

    def test_input_dependent_control_flow(self):
        result = analyze(
            """
    mov &P1IN, r4
    tst r4
    jz app_skip
    nop
app_skip:
            """,
            name="ctrl",
        )
        assert not result.secure
        assert result.violated_conditions() == {1}
        assert result.tasks_needing_watchdog() == ["app"]
        assert result.stats.forks >= 1

    def test_untainted_input_branches_are_fine(self):
        """Unknown-but-untainted control flow forks but stays secure."""
        result = analyze(
            """
    mov &P3IN, r4
    tst r4
    jz app_skip
    nop
app_skip:
            """
        )
        assert result.secure
        assert result.stats.forks >= 1

    def test_direct_tainted_write_to_untainted_port(self):
        result = analyze("    mov &P1IN, r4\n    mov r4, &P4OUT")
        assert not result.secure
        assert 5 in result.violated_conditions()

    def test_trusted_read_of_tainted_port(self):
        program = assemble(
            ".task sys trusted\n    mov &P1IN, r4\n    halt\n", name="c4"
        )
        result = TaintTracker(program).run()
        assert 4 in result.violated_conditions()

    def test_trusted_load_from_tainted_partition(self):
        program = assemble(
            ".task sys trusted\n    mov &0x0400, r4\n    halt\n", name="c3"
        )
        result = TaintTracker(program).run()
        assert 3 in result.violated_conditions()

    def test_untrusted_may_read_own_partition(self):
        result = analyze("    mov &0x0400, r4\n    mov r4, &P2OUT")
        assert result.secure


class TestWatchdogMechanism:
    WATCHDOG_PROGRAM = """
.task sys trusted
start:
    mov #0x0FFE, sp
    mov #0x5a03, &WDTCTL
    br #app
.task app untrusted
app:
    mov &P1IN, r4
    tst r4
    jz app_skip
    nop
app_skip:
idle:
    jmp idle
"""

    def test_watchdog_bounded_tainted_control_is_secure(self):
        program = assemble(self.WATCHDOG_PROGRAM, name="fig8")
        result = TaintTracker(program).run()
        assert result.secure
        assert result.tasks_needing_watchdog() == ["app"]
        # idle loop was fast-forwarded to the POR
        assert result.stats.fast_forwarded_cycles > 0

    def test_por_convergence_terminates(self):
        program = assemble(self.WATCHDOG_PROGRAM, name="fig8")
        result = TaintTracker(program).run()
        assert "POR" in [
            key for key in result.tree.nodes and ["POR"]
        ] or result.stats.terminations_by_merge >= 1

    def test_tainted_task_writing_watchdog_is_flagged(self):
        result = analyze(
            """
    mov &P1IN, r4
    mov r4, &WDTCTL
            """
        )
        assert not result.secure
        kinds = {v.kind for v in result.violations}
        assert ViolationKind.WATCHDOG_TAINTED in kinds


class TestAnalysisModes:
    def test_strict_conditions_flag_residual_taint(self):
        policy = SecurityPolicy(strict_conditions=True)
        result = analyze(
            """
    mov &P1IN, r4
    and #0x03FF, r4
    bis #0x0400, r4
    mov &P1IN, r5
    mov r5, 0(r4)
            """,
            policy=policy,
        )
        # registers keep taint when control returns to sys: strict C1 fires
        assert not result.secure
        assert 1 in result.violated_conditions()

    def test_secret_policy_tracks_other_ports(self):
        program = assemble(
            ".task sys trusted\n"
            "    mov &P5IN, r4\n"
            "    mov r4, &P4OUT\n"
            "    halt\n",
            name="secrecy",
        )
        result = TaintTracker(program, policy=secret_policy()).run()
        assert not result.secure
        assert 5 in result.violated_conditions()
        # under the *untrusted* policy the same program is fine on P5
        result2 = TaintTracker(program, policy=default_policy()).run()
        assert 5 not in result2.violated_conditions()

    def test_tainted_code_words_mode(self):
        policy = SecurityPolicy(taint_code_words=True)
        result = analyze("    nop", policy=policy)
        # tainted instruction words immediately taint control flow hints
        assert any(
            v.kind
            in (
                ViolationKind.TAINTED_CONTROL_FLOW,
                ViolationKind.TAINTED_STATE_IN_TRUSTED_CODE,
            )
            for v in result.violations
        ) or not result.secure

    def test_incomplete_exploration_is_not_secure(self):
        program = assemble(
            """
.task sys trusted
    mov &P3IN, r4
    mov r4, pc
            """,
            name="wild",
        )
        result = TaintTracker(program).run()
        assert result.stats.incomplete_paths >= 1
        assert not result.secure

    def test_report_renders(self):
        result = analyze("    mov &P1IN, r4\n    mov r4, &P4OUT")
        text = result.report()
        assert "INSECURE" in text
        assert "paths=" in text

    def test_tree_structure(self):
        result = analyze(
            """
    mov &P3IN, r4
    tst r4
    jz app_skip
    nop
app_skip:
            """
        )
        tree = result.tree
        assert len(tree) >= 3
        root = tree.root
        assert root is not None and root.children
        assert "node 0" in tree.render()
