"""Property-based tests for the code-lattice merge algebra.

The parallel coordinator's determinism argument leans on the merge
being a well-behaved join: ``codes_merge`` must be a commutative,
associative, idempotent least upper bound under the ``codes_cover``
partial order, and the drain-time ``_widen_to_top`` state must cover
everything.  Hypothesis hunts for counterexamples over the full code
alphabet (value in {0,1,X} x taint in {0,1} -> codes 0..5).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracker import TaintTracker, codes_cover, codes_merge
from repro.isa.assembler import assemble

#: Every legal per-DFF code: value*2 + taint with value in {0, 1, 2=X}.
CODES = list(range(6))


def codes_array(min_size=1, max_size=64):
    return st.lists(
        st.sampled_from(CODES), min_size=min_size, max_size=max_size
    ).map(lambda values: np.array(values, dtype=np.uint8))


def same_shape_codes(min_size=1, max_size=64):
    """Two or three equally-sized code vectors."""
    return st.integers(min_size, max_size).flatmap(
        lambda n: st.tuples(
            codes_array(n, n), codes_array(n, n), codes_array(n, n)
        )
    )


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_merge_commutative(arrays):
    a, b, _ = arrays
    assert (codes_merge(a, b) == codes_merge(b, a)).all()


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_merge_associative(arrays):
    a, b, c = arrays
    left = codes_merge(codes_merge(a, b), c)
    right = codes_merge(a, codes_merge(b, c))
    assert (left == right).all()


@settings(max_examples=200, deadline=None)
@given(a=codes_array())
def test_merge_idempotent(a):
    assert (codes_merge(a, a) == a).all()


@settings(max_examples=200, deadline=None)
@given(a=codes_array())
def test_cover_reflexive(a):
    assert codes_cover(a, a)


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_cover_antisymmetric(arrays):
    a, b, _ = arrays
    if codes_cover(a, b) and codes_cover(b, a):
        assert (a == b).all()


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_cover_transitive_through_merge(arrays):
    """Merge chains give non-vacuous cover pairs: c >= b >= a."""
    a, b, c = arrays
    ab = codes_merge(a, b)
    abc = codes_merge(ab, c)
    assert codes_cover(ab, a)
    assert codes_cover(abc, ab)
    assert codes_cover(abc, a)


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_merge_is_upper_bound(arrays):
    """The property the tracker's termination argument uses directly:
    the stored conservative state covers everything merged into it."""
    a, b, _ = arrays
    merged = codes_merge(a, b)
    assert codes_cover(merged, a)
    assert codes_cover(merged, b)


@settings(max_examples=200, deadline=None)
@given(arrays=same_shape_codes())
def test_merge_is_least_upper_bound(arrays):
    """Any common upper bound also covers the merge -- so merging loses
    no precision beyond what coverage already demands."""
    a, b, c = arrays
    if codes_cover(c, a) and codes_cover(c, b):
        assert codes_cover(c, codes_merge(a, b))


@settings(max_examples=200, deadline=None)
@given(a=codes_array())
def test_top_code_covers_everything(a):
    """Code 5 (tainted X) is the lattice top ``_widen_to_top`` fills
    DFF snapshots with."""
    top = np.full_like(a, 5)
    assert codes_cover(top, a)
    assert (codes_merge(top, a) == top).all()


def test_widen_to_top_is_upper_bound_on_real_snapshots():
    """Full-state check: the drain-time top state covers live snapshots
    taken at several points of a real exploration (the soundness of
    budget degradation rests on exactly this)."""
    program = assemble(
        ".task sys trusted\n"
        "start:\n"
        "    mov #0x0FFE, sp\n"
        "    call #app\n"
        "    jmp start\n"
        ".task app untrusted\n"
        "app:\n"
        "    mov &P1IN, r4\n"
        "    and #0x0007, r4\n"
        "    mov r4, &P2OUT\n"
        "    ret\n",
        name="widen_probe",
    )
    tracker = TaintTracker(program)
    soc = tracker.runner.soc
    snapshots = [soc.snapshot()]
    for _ in range(40):
        soc.step()
        snapshots.append(soc.snapshot())
    for snapshot in snapshots:
        top = tracker._widen_to_top(snapshot)
        assert tracker._covers(top, snapshot)
        # and the top state is a fixpoint of further widening
        assert tracker._covers(top, top)
