"""Tests for the execution-tree container."""

from repro.core.tree import ExecutionTree


class TestExecutionTree:
    def test_root_and_children(self):
        tree = ExecutionTree()
        root = tree.new_node(None, 0x10, 0)
        left = tree.new_node(root.node_id, 0x20, 5, pc_taint=0xFFFF)
        right = tree.new_node(root.node_id, 0x21, 5)
        assert tree.root is root
        assert root.children == [left.node_id, right.node_id]
        assert len(tree) == 3

    def test_leaves(self):
        tree = ExecutionTree()
        root = tree.new_node(None, 0, 0)
        child = tree.new_node(root.node_id, 1, 1)
        leaves = tree.leaves()
        assert leaves == [child]

    def test_render(self):
        tree = ExecutionTree()
        root = tree.new_node(None, 0x0, 0)
        root.end_reason = "fork"
        root.end_cycle = 9
        root.fork_address = 0x5
        child = tree.new_node(root.node_id, 0x8, 9, pc_taint=1)
        child.end_reason = "merged"
        child.end_cycle = 20
        text = tree.render()
        assert "node 0: pc=0x0000 cycles 0..9 -> fork" in text
        assert "[tainted PC]" in text
        assert "merged" in text

    def test_empty_render(self):
        assert ExecutionTree().render() == ""
