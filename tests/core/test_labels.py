"""Tests for security policies and violation records."""

import pytest

from repro import memmap
from repro.core.labels import SecurityPolicy, default_policy, secret_policy
from repro.core.violations import (
    CONDITION_OF_KIND,
    Violation,
    ViolationKind,
)


class TestPolicy:
    def test_default_labels(self):
        policy = default_policy()
        assert policy.is_tainted_input("P1IN")
        assert not policy.is_tainted_input("P3IN")
        assert policy.is_untainted_output("P4OUT")
        assert policy.is_untainted_output("P6OUT")
        assert not policy.is_untainted_output("P2OUT")
        assert not policy.is_untainted_output("P1IN")

    def test_memory_partitioning(self):
        policy = default_policy()
        assert policy.in_tainted_memory(0x0400)
        assert policy.in_tainted_memory(0x07FF)
        assert not policy.in_tainted_memory(0x0800)
        regions = policy.untainted_ram_regions()
        assert [(r.low, r.high) for r in regions] == [
            (memmap.RAM_BASE, 0x0400),
            (0x0800, memmap.RAM_END),
        ]

    def test_untainted_regions_with_edge_partition(self):
        policy = SecurityPolicy(
            tainted_memory=(
                memmap.MemoryRegion("t", memmap.RAM_BASE, 0x0200),
            )
        )
        regions = policy.untainted_ram_regions()
        assert [(r.low, r.high) for r in regions] == [
            (0x0200, memmap.RAM_END)
        ]

    def test_secret_policy_is_separate_kind(self):
        policy = secret_policy()
        assert policy.kind == "secret"
        assert policy.is_tainted_input("P5IN")
        assert not policy.is_tainted_input("P1IN")
        assert policy.is_untainted_output("P2OUT")
        assert not policy.is_untainted_output("P6OUT")


class TestViolationRecords:
    def test_condition_mapping_total(self):
        for kind in ViolationKind.ALL:
            assert CONDITION_OF_KIND[kind] in (1, 2, 3, 4, 5)

    def test_condition_values(self):
        assert (
            CONDITION_OF_KIND[ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY]
            == 2
        )
        assert (
            CONDITION_OF_KIND[ViolationKind.TAINTED_WRITE_UNTAINTED_PORT]
            == 5
        )
        assert CONDITION_OF_KIND[ViolationKind.TAINTED_CONTROL_FLOW] == 1

    def test_severity(self):
        direct = Violation(
            ViolationKind.TAINTED_WRITE_UNTAINTED_PORT, 0, 0, "t"
        )
        indirect = Violation(
            ViolationKind.TAINTED_WRITE_UNTAINTED_MEMORY, 0, 0, "t"
        )
        hint = Violation(
            ViolationKind.TAINTED_CONTROL_FLOW, 0, 0, "t", advisory=True
        )
        assert direct.severity == "error"
        assert indirect.severity == "warning"
        assert hint.severity == "advisory"

    def test_render_contains_location(self):
        violation = Violation(
            ViolationKind.TRUSTED_READ_TAINTED_PORT,
            cycle=12,
            address=0x42,
            task="app",
            port="P1IN",
            source_line=7,
        )
        text = violation.render()
        assert "0x0042" in text
        assert "line 7" in text
        assert "P1IN" in text
        assert "app" in text
