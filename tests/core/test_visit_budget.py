"""The exact-visit budget and the switch to conservative merging.

``_visit_concrete`` fingerprints each state at a concrete PC-changing
instruction while the exact-visit budget lasts ("exact"), stops on a
revisit of an identical state, and past the budget switches to Section
4.1's continue-from-the-conservative-state widening ("widened"), after
which coverage by the accumulated merge terminates the site ("stop").
"""

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble

FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""

# A bounded, untainted counting loop: 4 trips through `jnz`.
LOOP = """
.task sys trusted
    mov #4, r4
loop:
    sub #1, r4
    jnz loop
    mov #1, &P2OUT
    halt
"""


def _tracker(source=FORKY, **kwargs):
    program = assemble(source, name="t")
    return TaintTracker(program, default_policy(), **kwargs)


def _distinct_snapshots(tracker, count):
    """Genuinely different SoC states, one per simulated cycle."""
    snapshots = []
    for _ in range(count):
        tracker.runner.soc.step()
        snapshots.append(tracker.runner.soc.snapshot())
    return snapshots


class TestVisitConcrete:
    def test_exact_until_budget_then_widened_then_stop(self):
        tracker = _tracker(exact_branch_visits=2)
        s1, s2, s3 = _distinct_snapshots(tracker, 3)
        key = ("site", 0x10)

        verdict, cont = tracker._visit_concrete(key, s1)
        assert verdict == "exact"
        assert cont is s1
        verdict, _ = tracker._visit_concrete(key, s2)
        assert verdict == "exact"

        # Budget exhausted: the third distinct state switches the site
        # to the conservative continuation.
        verdict, cont = tracker._visit_concrete(key, s3)
        assert verdict == "widened"
        assert cont is not s3  # the merged state, not the input

        # Once widened, a state covered by the merge terminates.
        verdict, _ = tracker._visit_concrete(key, s3)
        assert verdict == "stop"

    def test_identical_state_stops_within_budget(self):
        tracker = _tracker(exact_branch_visits=8)
        (s1,) = _distinct_snapshots(tracker, 1)
        key = ("site", 0x10)
        assert tracker._visit_concrete(key, s1)[0] == "exact"
        # A bit-identical revisit is a true "already explored": its
        # continuation is this very path.
        assert tracker._visit_concrete(key, s1)[0] == "stop"
        assert tracker.stats.terminations_by_merge == 1

    def test_sites_have_independent_budgets(self):
        tracker = _tracker(exact_branch_visits=1)
        s1, s2 = _distinct_snapshots(tracker, 2)
        assert tracker._visit_concrete(("a", 1), s1)[0] == "exact"
        assert tracker._visit_concrete(("b", 2), s2)[0] == "exact"

    def test_merge_statistics_grow_on_widening(self):
        tracker = _tracker(exact_branch_visits=1)
        s1, s2 = _distinct_snapshots(tracker, 2)
        key = ("site", 0x10)
        tracker._visit_concrete(key, s1)
        before = tracker.stats.merges
        tracker._visit_concrete(key, s2)
        assert tracker.stats.merges == before + 1
        assert tracker.stats.peak_merged_states >= 1


class TestVisitWidening:
    def test_first_visit_merges_and_continues(self):
        tracker = _tracker()
        (s1,) = _distinct_snapshots(tracker, 1)
        covered, merged = tracker._visit_widening(("w", 1), s1)
        assert not covered
        assert merged is s1

    def test_covered_revisit_terminates(self):
        tracker = _tracker()
        (s1,) = _distinct_snapshots(tracker, 1)
        key = ("w", 1)
        tracker._visit_widening(key, s1)
        covered, merged = tracker._visit_widening(key, s1)
        assert covered
        assert tracker.stats.terminations_by_merge == 1

    def test_uncovered_revisit_widens_the_merge(self):
        tracker = _tracker()
        s1, s2 = _distinct_snapshots(tracker, 2)
        key = ("w", 1)
        tracker._visit_widening(key, s1)
        before = tracker.stats.merges
        covered, merged = tracker._visit_widening(key, s2)
        assert tracker.stats.merges == before + 1
        assert merged is not s2


class TestSwitchoverEndToEnd:
    def test_bounded_loop_exact_budget_verifies_precisely(self):
        result = _tracker(LOOP, exact_branch_visits=512).run()
        assert result.verdict == "secure"

    def test_bounded_loop_tiny_budget_still_sound(self):
        # With the budget below the trip count the loop converges
        # through the conservative merge instead of exact replay -- the
        # verdict must not become wrong, and nothing may raise.
        result = _tracker(LOOP, exact_branch_visits=1).run()
        assert result.verdict in ("secure", "inconclusive")
        assert result.stats.merges > 0

    def test_forky_verdict_independent_of_budget(self):
        exact = _tracker(FORKY, exact_branch_visits=512).run()
        tiny = _tracker(FORKY, exact_branch_visits=1).run()
        assert exact.verdict == "secure"
        assert tiny.verdict in ("secure", "inconclusive")
