"""Gate-level CPU tests: structure, smoke runs, and golden-model lockstep."""

import pytest

from repro.cpu import build_cpu, compiled_cpu, cpu_stats
from repro.isa.assembler import assemble
from repro.isasim.executor import Executor
from repro.logic.ternary import ONE
from repro.logic.words import TWord
from repro.sim.runner import GateRunner


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


def gate_run(circuit, source, max_cycles=5000, inputs=None):
    runner = GateRunner(circuit, assemble(source), inputs=inputs)
    runner.run(max_cycles=max_cycles)
    return runner


def isa_run(source, max_steps=5000):
    executor = Executor(assemble(source))
    for _ in range(max_steps):
        if executor.halted:
            break
        executor.step()
    return executor


def cross_check(circuit, source, registers=range(4, 16), inputs=None):
    """Run on gates and on the golden model; compare final state."""
    gate = gate_run(circuit, source, inputs=inputs)
    isa = isa_run(source)
    assert gate.at_halt(), "gate-level run never reached the idle loop"
    assert isa.halted, "golden run never halted"
    for index in registers:
        gate_word = gate.register(index)
        isa_word = isa.state.read(index)
        if isa_word.is_concrete:
            assert gate_word.is_concrete, (
                f"r{index}: gate {gate_word!r} vs isa {isa_word!r}"
            )
            assert gate_word.value == isa_word.value, (
                f"r{index}: gate {gate_word.value:#x} "
                f"vs isa {isa_word.value:#x}"
            )
    # memory must agree wherever the golden model is concrete
    isa_ram = isa.space.ram
    gate_ram = gate.soc.space.ram
    import numpy as np

    concrete = isa_ram.xmask == 0
    assert (gate_ram.xmask[concrete] == 0).all()
    assert (gate_ram.bits[concrete] == isa_ram.bits[concrete]).all()
    return gate, isa


class TestStructure:
    def test_netlist_validates(self):
        netlist = build_cpu()
        netlist.validate()

    def test_stats_in_microcontroller_range(self):
        stats = cpu_stats()
        assert 1500 < stats.num_gates < 10000
        assert 250 < stats.num_dffs < 600
        assert stats.logic_depth < 120

    def test_verilog_roundtrip(self):
        """The CPU netlist survives a write/parse round trip."""
        import io

        from repro.netlist.verilog import parse_verilog, write_verilog

        netlist = build_cpu()
        text = io.StringIO()
        write_verilog(netlist, text)
        parsed = parse_verilog(text.getvalue())
        # aliased debug ports come back as explicit BUFs
        assert len(parsed.gates) >= len(netlist.gates)
        assert len(parsed.dffs) == len(netlist.dffs)
        parsed.validate()


class TestSmoke:
    def test_reset_reaches_fetch(self, circuit):
        runner = GateRunner(circuit, assemble("halt"))
        assert runner.soc.pc() == TWord.const(0)

    def test_trivial_program(self, circuit):
        runner = gate_run(circuit, "mov #42, r4\nhalt")
        assert runner.at_halt()
        assert runner.register(4).value == 42

    def test_cycle_counts_match_golden(self, circuit):
        source = """
            mov #3, r4
        loop:
            dec r4
            jnz loop
            halt
        """
        gate = gate_run(circuit, source)
        isa = isa_run(source)
        # gate halts at the J phase of `jmp $`; the golden model counts the
        # full 2-cycle halt instruction, and GateRunner.reset burns 2.
        gate_cycles = gate.soc.cycle - 2
        assert abs(gate_cycles - isa.cycle) <= 2


class TestLockstep:
    def test_arithmetic_and_flags(self, circuit):
        cross_check(
            circuit,
            """
                mov #0x7FFF, r4
                add #1, r4          ; signed overflow
                mov #0, r5
                sub #1, r5          ; borrow
                mov #0xFFFF, r6
                add #1, r6          ; carry + zero
                addc #0, r7         ; pick up carry
                mov #5, r8
                cmp #5, r8
                jz taken
                mov #0xBAD, r9
            taken:
                mov #0xD00D, r10
                halt
            """,
        )

    def test_subtraction_conditions(self, circuit):
        cross_check(
            circuit,
            """
                mov #10, r4
                cmp #20, r4        ; 10 - 20: borrow, negative
                jnc borrow
                mov #1, r5
            borrow:
                mov #2, r6
                cmp #5, r4         ; 10 - 5: no borrow
                jc nob
                mov #3, r7
            nob:
                mov #4, r8
                cmp #10, r4
                jge geq
                mov #5, r9
            geq:
                halt
            """,
        )

    def test_logic_ops(self, circuit):
        cross_check(
            circuit,
            """
                mov #0xF0F0, r4
                and #0x0FF0, r4
                mov #0x00FF, r5
                bis #0x0F00, r5
                mov #0xFFFF, r6
                bic #0x00FF, r6
                mov #0x1234, r7
                xor #0xFFFF, r7
                bit #0x0F00, r5
                jnz bitset
                mov #9, r8
            bitset:
                halt
            """,
        )

    def test_shifts_and_swpb(self, circuit):
        cross_check(
            circuit,
            """
                mov #0x8003, r4
                rra r4
                mov #0x8003, r5
                rrc r5
                mov #0x1234, r6
                swpb r6
                halt
            """,
        )

    def test_memory_modes(self, circuit):
        cross_check(
            circuit,
            """
                mov #0x200, r4
                mov #77, 0(r4)
                mov #88, 1(r4)
                mov @r4, r5
                mov @r4+, r6
                mov @r4+, r7
                mov 0x200(r3), r8   ; absolute via CG base
                add #1, 0(r4)       ; rmw on memory
                mov @r4, r9
                halt
            """,
        )

    def test_stack_and_calls(self, circuit):
        cross_check(
            circuit,
            """
                mov #0x0FFE, sp
                mov #7, r4
                push r4
                push #3
                pop r5
                pop r6
                call #leaf
                mov #0xAA, r7
                halt
            leaf:
                mov #0xBB, r8
                ret
            """,
        )

    def test_loop_with_data_table(self, circuit):
        cross_check(
            circuit,
            """
                mov #table, r4
                mov #4, r10
                clr r5
            loop:
                add @r4+, r5
                dec r10
                jnz loop
                halt
            .data 0x400
            table:
                .word 10, 20, 30, 40
            """,
        )

    def test_signed_branches(self, circuit):
        cross_check(
            circuit,
            """
                mov #0xFFF6, r4     ; -10
                tst r4
                jn isneg
                mov #1, r5
            isneg:
                cmp #1, r4          ; -10 - 1 < 0 signed
                jl lower
                mov #2, r6
            lower:
                mov #3, r7
                halt
            """,
        )

    def test_pc_relative_branch_via_mov(self, circuit):
        cross_check(
            circuit,
            """
                br #over
                mov #0xBAD, r4
            over:
                mov #0x600D, r5
                halt
            """,
        )

    def test_port_io(self, circuit):
        inputs = {"P3IN": iter([21, 21])}

        def provide(name):
            return next(inputs[name])

        gate = gate_run(
            circuit,
            """
                mov &P3IN, r4
                add r4, r4
                mov r4, &P4OUT
                halt
            """,
            inputs=provide,
        )
        p4 = next(
            p for p in gate.soc.space.output_ports if p.name == "P4OUT"
        )
        assert p4.value.value == 42

    def test_sr_explicit_write(self, circuit):
        cross_check(
            circuit,
            """
                mov #0x0008, r2    ; write SR directly
                mov r2, r4
                halt
            """,
        )


class TestTaintGateLevel:
    def test_untrusted_port_taints_register(self, circuit):
        runner = GateRunner(
            circuit,
            assemble("mov &P1IN, r4\nhalt"),
        )
        runner.run()
        assert runner.register(4).tmask == 0xFFFF

    def test_mask_strips_taint_on_gates(self, circuit):
        runner = GateRunner(
            circuit,
            assemble(
                """
                    mov &P1IN, r4
                    and #0x03FF, r4
                    bis #0x0400, r4
                    halt
                """
            ),
        )
        runner.run()
        word = runner.register(4)
        assert word.tmask == 0x03FF
        assert word.bit(10) == (ONE, 0)

    def test_unmasked_store_smears_taint(self, circuit):
        runner = GateRunner(
            circuit,
            assemble(
                """
                    mov &P1IN, r4
                    mov #500, 0(r4)
                    halt
                """
            ),
        )
        runner.run()
        assert runner.soc.space.ram.region_tainted(0x100, 0x1000)
        assert runner.soc.space.watchdog.corrupted

    def test_tainted_branch_taints_pc(self, circuit):
        runner = GateRunner(
            circuit,
            assemble(
                """
                    mov &P1IN, r4
                    tst r4
                    jz away
                    halt
                away:
                    halt
                """
            ),
        )
        # run until the PC itself becomes unknown (the split point)
        for _ in range(40):
            runner.step()
            if runner.soc.pc().xmask:
                break
        pc = runner.soc.pc()
        assert pc.xmask, "PC never became unknown at the tainted branch"
        assert pc.tmask

    def test_branch_invariant_jump_keeps_pc_clean(self, circuit):
        """A tainted condition whose targets coincide leaks nothing --
        value-aware GLIFT at the PC mux (both mux legs agree)."""
        runner = GateRunner(
            circuit,
            assemble(
                """
                    mov &P1IN, r4
                    tst r4
                    jz same
                same:
                    halt
                """
            ),
        )
        runner.run(max_cycles=60)
        pc = runner.soc.pc()
        assert pc.is_concrete
        assert pc.tmask == 0
