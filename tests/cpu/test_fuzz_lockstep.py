"""Random-program lockstep fuzzing: gate-level LP430 vs golden model.

Hypothesis generates random (but well-formed, terminating) programs from
a broad instruction mix; each runs to completion on the compiled netlist
and on the architectural simulator, and the final architectural state --
every register, the flags, the touched memory -- must agree.

A second property checks the *symbolic* relationship: with unknown
(untainted) port inputs, the gate-level result must cover the golden
model's (gate composition may be more conservative, never less).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu import compiled_cpu
from repro.isa.assembler import assemble
from repro.isasim.executor import Executor
from repro.sim.runner import GateRunner

SCRATCH_BASE = 0x0200  # 16-word scratch array the fuzz programs may touch

TWO_OP = ["mov", "add", "addc", "sub", "cmp", "bit", "bic", "bis", "xor", "and"]
ONE_OP = ["rra", "rrc", "swpb"]
REGS = [f"r{i}" for i in range(4, 12)]


@st.composite
def random_program(draw):
    lines = [
        "    mov #0x0FFE, sp",
        f"    mov #{SCRATCH_BASE}, r12",  # scratch pointer, kept valid
    ]
    # seed the data registers
    for reg in REGS:
        lines.append(f"    mov #{draw(st.integers(0, 0xFFFF))}, {reg}")

    body_len = draw(st.integers(3, 14))
    for _ in range(body_len):
        kind = draw(st.sampled_from(["two", "one", "store", "load", "stack"]))
        if kind == "two":
            op = draw(st.sampled_from(TWO_OP))
            src = draw(
                st.one_of(
                    st.sampled_from(REGS),
                    st.integers(0, 0xFFFF).map(lambda v: f"#{v}"),
                )
            )
            dst = draw(st.sampled_from(REGS))
            lines.append(f"    {op} {src}, {dst}")
        elif kind == "one":
            op = draw(st.sampled_from(ONE_OP))
            lines.append(f"    {op} {draw(st.sampled_from(REGS))}")
        elif kind == "store":
            offset = draw(st.integers(0, 15))
            src = draw(st.sampled_from(REGS))
            lines.append(f"    mov {src}, {offset}(r12)")
        elif kind == "load":
            offset = draw(st.integers(0, 15))
            dst = draw(st.sampled_from(REGS))
            mode = draw(st.sampled_from(["indexed", "indirect"]))
            if mode == "indexed":
                lines.append(f"    mov {offset}(r12), {dst}")
            else:
                lines.append(f"    mov @r12, {dst}")
        else:  # stack
            reg = draw(st.sampled_from(REGS))
            lines.append(f"    push {reg}")
            lines.append(f"    pop {draw(st.sampled_from(REGS))}")

    # an optional counted loop over a tail of simple ops
    if draw(st.booleans()):
        count = draw(st.integers(1, 4))
        lines.append(f"    mov #{count}, r13")
        lines.append("fuzz_loop:")
        lines.append(
            f"    add {draw(st.sampled_from(REGS))}, "
            f"{draw(st.sampled_from(REGS))}"
        )
        lines.append("    dec r13")
        lines.append("    jnz fuzz_loop")
    lines.append("    halt")
    # initialise the scratch array so loads are deterministic
    lines.append(f".data {SCRATCH_BASE}")
    values = ", ".join(
        str(draw(st.integers(0, 0xFFFF))) for _ in range(16)
    )
    lines.append(f"    .word {values}")
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def circuit():
    return compiled_cpu()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=random_program())
def test_concrete_lockstep(source):
    program = assemble(source, name="fuzz")
    circuit = compiled_cpu()

    gate = GateRunner(circuit, program)
    gate_cycles = gate.run(max_cycles=5_000)
    assert gate.at_halt(), "gate-level run never halted"

    isa = Executor(program)
    steps = 0
    while not isa.halted and steps < 5_000:
        isa.step()
        steps += 1
    assert isa.halted, "golden run never halted"

    for index in list(range(4, 14)) + [1]:
        gate_word = gate.register(index)
        isa_word = isa.state.read(index)
        assert gate_word.is_concrete and isa_word.is_concrete
        assert gate_word.value == isa_word.value, (
            f"r{index}: gate 0x{gate_word.value:04x} vs "
            f"isa 0x{isa_word.value:04x}\n{source}"
        )
    # flags (masking the reserved bits)
    from repro.isa.spec import FLAG_MASK

    gate_sr = gate.soc.read_debug("dbg_sr").value & FLAG_MASK
    isa_sr = isa.state.sr.value & FLAG_MASK
    assert gate_sr == isa_sr, f"SR: {gate_sr:#x} vs {isa_sr:#x}\n{source}"
    # scratch memory
    for offset in range(16):
        gate_mem = gate.soc.space.ram.get(SCRATCH_BASE + offset)
        isa_mem = isa.space.ram.get(SCRATCH_BASE + offset)
        assert gate_mem.value == isa_mem.value, (
            f"mem[{offset}]: {gate_mem.value:#x} vs {isa_mem.value:#x}"
            f"\n{source}"
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=random_program())
def test_concrete_lockstep_through_pickled_handoffs(source):
    """Lockstep oracle through the parallel worker hand-off path: the
    gate-level run is sliced into segments and the SoC snapshot is
    round-tripped through pickle between slices -- exactly what the
    coordinator/worker protocol does to a path state.  Serialization
    must be invisible to the architectural result."""
    import pickle

    program = assemble(source, name="fuzz")
    circuit = compiled_cpu()

    gate = GateRunner(circuit, program)
    cycles = 0
    while not gate.at_halt() and cycles < 5_000:
        # a deliberately odd slice length so hand-offs land at arbitrary
        # FSM phases, not just instruction boundaries
        for _ in range(97):
            if gate.at_halt() or cycles >= 5_000:
                break
            gate.soc.step()
            cycles += 1
        state = pickle.loads(pickle.dumps(gate.soc.snapshot()))
        gate.soc.restore(state)
    assert gate.at_halt(), "gate-level run never halted"

    isa = Executor(program)
    steps = 0
    while not isa.halted and steps < 5_000:
        isa.step()
        steps += 1
    assert isa.halted, "golden run never halted"

    for index in list(range(4, 14)) + [1]:
        gate_word = gate.register(index)
        isa_word = isa.state.read(index)
        assert gate_word.is_concrete and isa_word.is_concrete
        assert gate_word.value == isa_word.value, (
            f"r{index}: gate 0x{gate_word.value:04x} vs "
            f"isa 0x{isa_word.value:04x}\n{source}"
        )
    from repro.isa.spec import FLAG_MASK

    gate_sr = gate.soc.read_debug("dbg_sr").value & FLAG_MASK
    isa_sr = isa.state.sr.value & FLAG_MASK
    assert gate_sr == isa_sr, f"SR: {gate_sr:#x} vs {isa_sr:#x}\n{source}"
    for offset in range(16):
        gate_mem = gate.soc.space.ram.get(SCRATCH_BASE + offset)
        isa_mem = isa.space.ram.get(SCRATCH_BASE + offset)
        assert gate_mem.value == isa_mem.value, (
            f"mem[{offset}]: {gate_mem.value:#x} vs {isa_mem.value:#x}"
            f"\n{source}"
        )


@st.composite
def symbolic_program(draw):
    """Branch-free programs mixing unknown port data into computation."""
    lines = ["    mov #0x0FFE, sp", "    mov &P3IN, r4", "    mov &P3IN, r5"]
    for reg in ("r6", "r7", "r8"):
        lines.append(f"    mov #{draw(st.integers(0, 0xFFFF))}, {reg}")
    for _ in range(draw(st.integers(2, 10))):
        op = draw(st.sampled_from(TWO_OP))
        src = draw(st.sampled_from(["r4", "r5", "r6", "r7", "r8"]))
        dst = draw(st.sampled_from(["r4", "r5", "r6", "r7", "r8"]))
        lines.append(f"    {op} {src}, {dst}")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=symbolic_program())
def test_symbolic_gate_covers_golden(source):
    program = assemble(source, name="symfuzz")
    circuit = compiled_cpu()

    gate = GateRunner(circuit, program)
    gate.run(max_cycles=2_000)
    assert gate.at_halt()

    isa = Executor(program)
    steps = 0
    while not isa.halted and steps < 2_000:
        isa.step()
        steps += 1
    assert isa.halted

    for index in range(4, 9):
        gate_word = gate.register(index)
        isa_word = isa.state.read(index)
        assert gate_word.covers(isa_word), (
            f"r{index}: gate {gate_word!r} does not cover "
            f"golden {isa_word!r}\n{source}"
        )
