"""Guard the benchmark-artifact contract without running the benches.

The full suite under ``benchmarks/`` is too slow for tier-1, but two
kinds of drift have bitten before and are cheap to catch statically:

* a bench module stops emitting its ``BENCH_<name>.json`` document, so
  the perf trajectory silently loses a series;
* the collection pattern regresses and ``pytest benchmarks/`` collects
  nothing at all (``bench_*.py`` does not match pytest's default
  ``test_*.py`` file glob -- the repo must opt in via pyproject).
"""

import re
from pathlib import Path

REPO = Path(__file__).parent.parent
BENCH_DIR = REPO / "benchmarks"


def bench_modules():
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    assert files, "no bench modules found -- wrong repo layout?"
    return files


def test_every_bench_module_emits_a_json_document():
    missing = [
        path.name
        for path in bench_modules()
        if "bench_json(" not in path.read_text()
        and "emit_bench_json(" not in path.read_text()
    ]
    assert not missing, (
        f"bench modules without a BENCH_*.json emission: {missing} "
        "(every benchmarks/bench_*.py must call the bench_json fixture "
        "so its document lands in the repo root -- see "
        "benchmarks/conftest.py)"
    )


def test_bench_documents_use_unique_names():
    """Two modules writing the same BENCH_<name>.json would clobber
    each other; names must be distinct across the suite."""
    names = []
    for path in bench_modules():
        names.extend(
            re.findall(r"bench_json\(\s*[\"']([\w-]+)[\"']", path.read_text())
        )
    assert names
    assert len(names) == len(set(names)), (
        f"duplicate BENCH document names: "
        f"{sorted(n for n in set(names) if names.count(n) > 1)}"
    )


def test_bench_files_are_collectable():
    """pytest only collects ``bench_*.py`` because pyproject opts in;
    losing that line makes ``pytest benchmarks/`` a silent no-op."""
    pyproject = (REPO / "pyproject.toml").read_text()
    assert "bench_*.py" in pyproject, (
        "pyproject.toml no longer lists bench_*.py in python_files; "
        "`pytest benchmarks/` would collect zero tests"
    )


def test_bench_output_dir_is_the_repo_root(monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    assert module.bench_output_dir().resolve() == REPO.resolve()
    monkeypatch.setenv("REPRO_BENCH_DIR", "/tmp/elsewhere")
    assert module.bench_output_dir() == Path("/tmp/elsewhere")
