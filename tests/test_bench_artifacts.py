"""Guard the benchmark-artifact contract without running the benches.

The full suite under ``benchmarks/`` is too slow for tier-1, but two
kinds of drift have bitten before and are cheap to catch statically:

* a bench module stops emitting its ``BENCH_<name>.json`` document, so
  the perf trajectory silently loses a series;
* the collection pattern regresses and ``pytest benchmarks/`` collects
  nothing at all (``bench_*.py`` does not match pytest's default
  ``test_*.py`` file glob -- the repo must opt in via pyproject).
"""

import json
import re
from pathlib import Path

REPO = Path(__file__).parent.parent
BENCH_DIR = REPO / "benchmarks"

#: Keys benchmarks/_emit.py stamps on every document (schema >= 3).
COMMON_KEYS = ("bench", "schema", "host", "git_rev", "utc", "wall_seconds")


def bench_modules():
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    assert files, "no bench modules found -- wrong repo layout?"
    return files


def test_every_bench_module_emits_a_json_document():
    missing = [
        path.name
        for path in bench_modules()
        if "bench_json(" not in path.read_text()
        and "emit_bench_json(" not in path.read_text()
    ]
    assert not missing, (
        f"bench modules without a BENCH_*.json emission: {missing} "
        "(every benchmarks/bench_*.py must call the bench_json fixture "
        "so its document lands in the repo root -- see "
        "benchmarks/conftest.py)"
    )


def test_bench_documents_use_unique_names():
    """Two modules writing the same BENCH_<name>.json would clobber
    each other; names must be distinct across the suite."""
    names = []
    for path in bench_modules():
        names.extend(
            re.findall(r"bench_json\(\s*[\"']([\w-]+)[\"']", path.read_text())
        )
    assert names
    assert len(names) == len(set(names)), (
        f"duplicate BENCH document names: "
        f"{sorted(n for n in set(names) if names.count(n) > 1)}"
    )


def test_bench_files_are_collectable():
    """pytest only collects ``bench_*.py`` because pyproject opts in;
    losing that line makes ``pytest benchmarks/`` a silent no-op."""
    pyproject = (REPO / "pyproject.toml").read_text()
    assert "bench_*.py" in pyproject, (
        "pyproject.toml no longer lists bench_*.py in python_files; "
        "`pytest benchmarks/` would collect zero tests"
    )


def test_committed_bench_documents_carry_the_common_keys():
    """Every committed BENCH_*.json must be self-describing: which
    commit and when the numbers were measured (``git_rev``/``utc``),
    on what host, at which schema.  ``cycles_per_second`` is only
    allowed when it actually holds a number -- a ``null`` placeholder
    (bench_service.py used to emit one) poisons trend queries."""
    documents = sorted(REPO.glob("BENCH_*.json"))
    assert documents, "no committed BENCH_*.json artifacts found"
    problems = []
    for path in documents:
        doc = json.loads(path.read_text())
        for key in COMMON_KEYS:
            if key not in doc:
                problems.append(f"{path.name}: missing {key!r}")
        if doc.get("schema", 0) < 3:
            problems.append(f"{path.name}: schema {doc.get('schema')} < 3")
        if "cycles_per_second" in doc and not isinstance(
            doc["cycles_per_second"], (int, float)
        ):
            problems.append(
                f"{path.name}: cycles_per_second is "
                f"{doc['cycles_per_second']!r}; omit the key instead"
            )
    assert not problems, "\n".join(problems)


def test_emitter_omits_null_cycles_per_second(tmp_path, monkeypatch):
    """The shared emitter enforces the omit-don't-null rule itself."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_emit_under_test", BENCH_DIR / "_emit.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_GIT_REV", "cafe" * 10)
    path = module.emit_bench_json("emitter_probe", {"x": 1}, wall_seconds=2.0)
    doc = json.loads(path.read_text())
    assert "cycles_per_second" not in doc
    for key in COMMON_KEYS:
        assert key in doc, f"emitter dropped common key {key!r}"
    assert doc["git_rev"] == "cafe" * 10
    assert doc["schema"] == module.BENCH_SCHEMA >= 3
    assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", doc["utc"])

    with_cycles = module.emit_bench_json(
        "emitter_probe2", {}, wall_seconds=1.0, cycles_per_second=42.0
    )
    assert json.loads(with_cycles.read_text())["cycles_per_second"] == 42.0


def test_bench_output_dir_is_the_repo_root(monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    assert module.bench_output_dir().resolve() == REPO.resolve()
    monkeypatch.setenv("REPRO_BENCH_DIR", "/tmp/elsewhere")
    assert module.bench_output_dir() == Path("/tmp/elsewhere")
