"""The typed error taxonomy: hierarchy, exit codes, documents."""

import pytest

from repro.core.tracker import TrackerError
from repro.resilience import (
    AnalysisError,
    AnalysisInterrupted,
    CheckpointError,
    EXIT_CHECKPOINT,
    EXIT_FUNDAMENTAL,
    EXIT_INPUT,
    EXIT_INTERRUPTED,
    ForkError,
    InjectedFault,
    InputError,
    ReproError,
    SimulationError,
    VERDICT_EXIT_CODES,
)
from repro.transform import FundamentalViolation


class TestHierarchy:
    def test_every_leaf_is_a_repro_error(self):
        for cls in (
            InputError,
            AnalysisError,
            SimulationError,
            ForkError,
            CheckpointError,
            AnalysisInterrupted,
            InjectedFault,
        ):
            assert issubclass(cls, ReproError)

    def test_legacy_errors_joined_the_taxonomy(self):
        # The pre-existing error types must be catchable as ReproError so
        # one except clause at the CLI boundary covers everything.
        assert issubclass(TrackerError, AnalysisError)
        assert issubclass(TrackerError, ReproError)
        assert issubclass(FundamentalViolation, ReproError)

    def test_fork_error_is_an_analysis_error(self):
        assert issubclass(ForkError, AnalysisError)

    def test_injected_fault_is_a_simulation_error(self):
        assert issubclass(InjectedFault, SimulationError)


class TestExitCodes:
    def test_verdict_exit_codes(self):
        assert VERDICT_EXIT_CODES == {
            "secure": 0,
            "insecure": 1,
            "inconclusive": 3,
        }

    def test_error_exit_codes_documented_and_distinct(self):
        assert InputError("x").exit_code == EXIT_INPUT == 4
        assert CheckpointError("x").exit_code == EXIT_CHECKPOINT == 5
        assert AnalysisError("x").exit_code == 6
        assert AnalysisInterrupted("x").exit_code == EXIT_INTERRUPTED == 130
        assert FundamentalViolation("x").exit_code == EXIT_FUNDAMENTAL == 2
        # No verdict code collides with an error code.
        codes = set(VERDICT_EXIT_CODES.values())
        assert codes.isdisjoint({4, 5, 6, 2, 130})


class TestTaxonomyTable:
    """Pin the full (code, phase, retriable, exit_code) table.

    The analysis service's retry classifier keys on ``retriable`` and
    preserves ``exit_code`` verbatim, so any change here must be a
    reviewed decision -- this test turns silent drift into a diff.
    """

    EXPECTED = {
        "REPRO_ERROR": ("unknown", False, 6),
        "INPUT": ("io", False, 4),
        "ANALYSIS": ("explore", False, 6),
        "SIMULATION": ("simulate", True, 6),
        "FORK": ("explore", False, 6),
        "TRACKER": ("explore", False, 6),
        "CHECKPOINT": ("checkpoint", False, 5),
        "INTERRUPTED": ("explore", True, 130),
        "FAULT_INJECTED": ("simulate", True, 6),
        "FUNDAMENTAL_VIOLATION": ("repair", False, 2),
    }

    def test_full_table_matches(self):
        from repro.resilience import taxonomy

        rows = {
            code: (phase, retriable, exit_code)
            for _, code, phase, retriable, exit_code in taxonomy()
        }
        assert rows == self.EXPECTED

    def test_taxonomy_covers_every_leaf_once(self):
        from repro.resilience import taxonomy

        codes = [code for _, code, *_ in taxonomy()]
        assert len(codes) == len(set(codes))

    def test_retriable_set_is_exactly_the_transient_failures(self):
        """Only interrupts and simulation transients retry; everything
        deterministic (input, invariants, corrupt files) fails fast."""
        from repro.resilience import taxonomy

        retriable = {code for _, code, _, r, _ in taxonomy() if r}
        assert retriable == {"SIMULATION", "INTERRUPTED", "FAULT_INJECTED"}


class TestDocuments:
    def test_to_document_shape(self):
        error = SimulationError("boom at cycle 7", cycle=7, paths=2)
        doc = error.to_document()
        assert doc["code"] == "SIMULATION"
        assert doc["phase"] == "simulate"
        assert doc["retriable"] is True
        assert doc["exit_code"] == 6
        assert doc["message"] == "boom at cycle 7"
        assert doc["context"] == {"cycle": 7, "paths": 2}

    def test_render_names_the_code(self):
        assert InputError("no such file").render() == (
            "error[INPUT]: no such file"
        )

    def test_interrupted_carries_checkpoint_path(self):
        error = AnalysisInterrupted(
            "interrupted", checkpoint="/tmp/x.ckpt", reason="SIGINT"
        )
        assert error.checkpoint_path == "/tmp/x.ckpt"
        assert error.retriable is True
        bare = AnalysisInterrupted("interrupted")
        assert bare.checkpoint_path is None

    def test_context_does_not_eat_message(self):
        error = ForkError("pc smeared", pc=0x1234, cycle=9, forks=65)
        assert "pc smeared" in str(error)
        assert error.context["pc"] == 0x1234

    def test_catchable_as_plain_exception(self):
        with pytest.raises(Exception):
            raise CheckpointError("bad magic")
