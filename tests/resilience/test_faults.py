"""Fault injection: the analyzer survives or fails *typed*, never with a
bare traceback from the gate-level substrate."""

import pytest

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    ReproError,
    SimulationError,
    get_injector,
    inject_faults,
    install_injector,
)

FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""


def _analyze(**tracker_kwargs):
    program = assemble(FORKY, name="forky")
    return TaintTracker(program, default_policy(), **tracker_kwargs).run()


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    install_injector(None)


class TestHook:
    def test_no_injector_by_default(self):
        assert get_injector() is None

    def test_context_manager_installs_and_restores(self):
        injector = FaultInjector(seed=1, rate=1.0)
        with inject_faults(injector) as active:
            assert get_injector() is active is injector
        assert get_injector() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(kinds=("decode", "cosmic_ray"))


class TestSurvival:
    def test_decode_faults_never_crash(self):
        # Every shadow decode fails: each path ends "illegal".  The
        # analyzer must complete and return a result, not raise.
        with inject_faults(
            FaultInjector(seed=7, rate=1.0, kinds=("decode",))
        ) as injector:
            result = _analyze()
        assert injector.injected
        assert result.verdict in ("secure", "insecure", "inconclusive")

    def test_gate_eval_fault_becomes_typed_simulation_error(self):
        with inject_faults(
            FaultInjector(seed=7, rate=1.0, kinds=("gate_eval",))
        ):
            with pytest.raises(SimulationError) as info:
                _analyze()
        assert "gate evaluation failed" in str(info.value)
        assert info.value.retriable
        # Never a bare RuntimeError: the tracker wrapped it.
        assert isinstance(info.value, ReproError)

    def test_snapshot_corruption_survives_or_fails_typed(self):
        with inject_faults(
            FaultInjector(seed=3, rate=1.0, kinds=("snapshot",))
        ) as injector:
            try:
                result = _analyze()
            except ReproError:
                return  # typed failure is an acceptable outcome
        assert injector.injected
        # Corruption is loss of knowledge (taint), so over-taint may
        # degrade the verdict -- but soundly, and without crashing.
        assert result.verdict in ("secure", "insecure", "inconclusive")

    def test_clock_skew_survives(self):
        with inject_faults(
            FaultInjector(
                seed=5, rate=0.5, kinds=("clock_skew",), skew_cycles=11
            )
        ) as injector:
            result = _analyze()
        assert injector.injected
        assert result.verdict in ("secure", "insecure", "inconclusive")

    def test_every_kind_at_low_rate_is_survivable_or_typed(self):
        with inject_faults(
            FaultInjector(seed=11, rate=0.05, kinds=FAULT_KINDS)
        ):
            try:
                result = _analyze()
            except ReproError:
                return
        assert result.verdict in ("secure", "insecure", "inconclusive")


class TestDeterminism:
    def _run(self, seed):
        with inject_faults(
            FaultInjector(seed=seed, rate=0.3, kinds=("decode",))
        ) as injector:
            result = _analyze()
        return injector.injected, result

    def test_same_seed_same_faults_same_result(self):
        faults_a, result_a = self._run(42)
        faults_b, result_b = self._run(42)
        assert faults_a == faults_b
        assert result_a.verdict == result_b.verdict
        assert result_a.stats.paths == result_b.stats.paths

    def test_different_seed_different_faults(self):
        faults_a, _ = self._run(1)
        faults_b, _ = self._run(2)
        assert faults_a != faults_b

    def test_max_faults_caps_injection(self):
        injector = FaultInjector(
            seed=9, rate=1.0, kinds=("decode",), max_faults=2
        )
        fires = [injector.on_decode(0, cycle) for cycle in range(10)]
        assert sum(fires) == 2
        assert len(injector.injected) == 2
