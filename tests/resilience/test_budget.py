"""Budgets and sound degradation.

The acceptance property: exhausting a budget never raises and never
flips the verdict to ``secure`` -- unexplored work is widened to the
fully-tainted top state, so the result honestly says ``inconclusive``.
"""

import pytest

from repro.core import TaintTracker, default_policy
from repro.core.tracker import AnalysisStats
from repro.isa.assembler import assemble
from repro.obs.clock import ManualClock
from repro.resilience import AnalysisBudget, current_rss_mb
from repro.workloads.registry import BENCHMARKS

# Trusted code branching on an *untainted* unknown input: three paths,
# no violations -- the minimal workload where truncation matters.
FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""


def _analyze(source, name="t", **kwargs):
    program = assemble(source, name=name)
    return TaintTracker(program, default_policy(), **kwargs).run()


class TestSoundDegradation:
    def test_table1_workload_max_paths_one_is_inconclusive(self):
        # The issue's acceptance criterion: a Table 1 workload under
        # max_paths=1 completes without raising, names the exhausted
        # budget, and the verdict is inconclusive.
        info = BENCHMARKS["intAVG"]
        result = _analyze(
            info.service_source,
            name="intavg",
            budget=AnalysisBudget(max_paths=1),
        )
        assert result.verdict == "inconclusive"
        assert "max_paths" in result.exhausted
        assert result.degraded
        assert result.stats.drained_paths > 0

    def test_forky_truncation_is_inconclusive_not_secure(self):
        full = _analyze(FORKY)
        assert full.verdict == "secure"
        assert full.stats.paths == 3

        cut = _analyze(FORKY, budget=AnalysisBudget(max_paths=1))
        assert cut.verdict == "inconclusive"
        assert cut.exhausted == ["max_paths"]
        assert cut.stats.drained_paths == 2
        report = cut.report()
        assert "INCONCLUSIVE" in report
        assert "max_paths" in report
        assert "widened" in report

    def test_default_budget_does_not_change_the_verdict(self):
        result = _analyze(FORKY, budget=AnalysisBudget())
        assert result.verdict == "secure"
        assert not result.exhausted

    def test_zero_deadline_drains_immediately(self):
        clock = ManualClock()
        budget = AnalysisBudget(deadline_seconds=0.0, clock=clock)
        budget.start()
        clock.advance(0.001)
        result = _analyze(FORKY, budget=budget)
        assert result.verdict == "inconclusive"
        assert "deadline" in result.exhausted

    def test_insecure_verdict_survives_truncation(self):
        # Violations found before exhaustion are definite: the verdict
        # stays insecure (monotone under truncation), with the exhaustion
        # recorded alongside.
        vulnerable = """
.task sys trusted
start:
    mov #0x07FE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""
        result = _analyze(
            vulnerable, budget=AnalysisBudget(max_paths=1)
        )
        assert result.verdict == "insecure"
        assert "INSECURE" in result.report()


class TestBudgetMechanics:
    def test_start_latches_the_deadline_once(self):
        clock = ManualClock()
        budget = AnalysisBudget(deadline_seconds=10.0, clock=clock)
        budget.start()
        clock.advance(6.0)
        budget.start()  # idempotent: must NOT re-anchor
        clock.advance(5.0)
        stats = AnalysisStats()
        assert "deadline" in budget.exhausted_reasons(stats, 0)

    def test_reset_re_arms_the_deadline(self):
        clock = ManualClock()
        budget = AnalysisBudget(deadline_seconds=10.0, clock=clock)
        budget.start()
        clock.advance(11.0)
        budget.reset()
        budget.start()
        stats = AnalysisStats()
        assert budget.exhausted_reasons(stats, 0) == []

    def test_exhausted_reasons_reports_every_blown_budget(self):
        budget = AnalysisBudget(max_paths=2, max_merged_states=5)
        budget.start()
        stats = AnalysisStats()
        stats.paths = 2
        reasons = budget.exhausted_reasons(stats, merged_states=9)
        assert reasons == ["max_paths", "max_merged_states"]

    def test_unbounded_budget_reports_nothing(self):
        budget = AnalysisBudget(max_paths=None)
        budget.start()
        stats = AnalysisStats()
        stats.paths = 10**9
        assert budget.exhausted_reasons(stats, 10**9) == []
        assert not budget.bounded

    def test_mid_path_exhaustion_sees_the_deadline(self):
        clock = ManualClock()
        budget = AnalysisBudget(deadline_seconds=1.0, clock=clock)
        budget.start()
        stats = AnalysisStats()
        assert not budget.mid_path_exhausted(stats)
        clock.advance(2.0)
        assert budget.mid_path_exhausted(stats)

    def test_current_rss_is_plausible(self):
        rss = current_rss_mb()
        assert 1.0 < rss < 1024 * 64


class TestPartialRepair:
    def test_secure_compile_returns_partial_not_fundamental(self):
        from repro.transform import secure_compile

        info = BENCHMARKS["intAVG"]
        repaired = secure_compile(
            info.service_source,
            name="intavg",
            budget=AnalysisBudget(max_paths=1),
        )
        assert repaired.partial
        assert repaired.verdict == "inconclusive"

    def test_secure_compile_unbudgeted_still_converges(self):
        from repro.transform import secure_compile

        info = BENCHMARKS["intAVG"]
        repaired = secure_compile(info.service_source, name="intavg")
        assert repaired.secure
        assert not repaired.partial
