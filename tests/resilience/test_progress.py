"""Progress estimation: snapshots, rate/ETA, throttling, fan-out.

The contract the v4 trace lint and the service SSE stream rely on:
``fraction`` is monotone non-decreasing within a run, the ETA is bounded
(deadline-clamped, day-capped), and an attached estimator never perturbs
the analysis verdict or exploration statistics.
"""

import io
import json

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.obs import Observer, TraceRecorder, lint_trace, observe
from repro.obs.clock import ManualClock
from repro.resilience import AnalysisBudget, ProgressEstimator
from repro.resilience.progress import (
    ETA_CAP_SECONDS,
    PROGRESS_SCHEMA,
    ProgressSnapshot,
    TICK_CHECK_INTERVAL,
)

# Untainted unknown input forks: several paths, a non-trivial frontier.
FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""


def _run(source, progress=None, budget=None, observer=None):
    def _go():
        program = assemble(source, name="t")
        return TaintTracker(
            program,
            default_policy(),
            budget=budget or AnalysisBudget(),
            progress=progress,
        ).run()

    if observer is not None:
        with observe(observer):
            return _go()
    return _go()


class TestSnapshotDocument:
    def test_document_roundtrips(self):
        snapshot = ProgressSnapshot(
            unix=1.5, paths=3, pending=2, cycles=100, merged_states=1,
            violations=0, budget={"paths": 0.1}, fraction=0.4,
            eta_seconds=2.0, rate_paths_per_s=1.5,
        )
        document = snapshot.to_document()
        assert document["schema"] == PROGRESS_SCHEMA
        assert ProgressSnapshot.from_document(document) == snapshot

    def test_from_document_ignores_unknown_keys(self):
        snapshot = ProgressSnapshot(
            unix=0.0, paths=1, pending=0, cycles=1, merged_states=0,
            violations=0, budget={}, fraction=0.0,
        )
        document = snapshot.to_document()
        document["surprise"] = True
        assert ProgressSnapshot.from_document(document) == snapshot


class TestEstimatorDuringAnalysis:
    def test_snapshots_are_taken_and_fraction_is_monotone(self):
        estimator = ProgressEstimator(interval_seconds=0.0)
        seen = []
        estimator.sink = seen.append
        result = _run(FORKY, progress=estimator)
        assert result.verdict == "secure"
        assert estimator.snapshots_taken >= 2
        assert seen[-1] is estimator.latest
        fractions = [s.fraction for s in seen]
        assert fractions == sorted(fractions)
        assert estimator.latest.fraction == 1.0
        assert estimator.latest.pending == 0

    def test_final_forced_snapshot_reflects_the_drained_worklist(self):
        estimator = ProgressEstimator(interval_seconds=3600.0)
        _run(FORKY, progress=estimator)
        # The interval never elapsed, but run() forces one at the end.
        assert estimator.snapshots_taken >= 1
        assert estimator.latest.pending == 0
        assert estimator.latest.fraction == 1.0

    def test_estimator_does_not_change_the_analysis(self):
        bare = _run(FORKY)
        timed = _run(FORKY, progress=ProgressEstimator(interval_seconds=0.0))
        assert timed.verdict == bare.verdict
        assert timed.stats.paths == bare.stats.paths
        assert timed.stats.cycles_simulated == bare.stats.cycles_simulated

    def test_budget_axis_fractions_are_reported(self):
        estimator = ProgressEstimator(interval_seconds=0.0)
        _run(
            FORKY,
            progress=estimator,
            budget=AnalysisBudget(max_paths=64, deadline_seconds=3600.0),
        )
        budget = estimator.latest.budget
        assert 0.0 < budget["paths"] <= 1.0
        assert "deadline" in budget
        assert "max_rss" not in budget and "rss" not in budget

    def test_trace_events_lint_clean_and_carry_context(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = Observer(
            trace=TraceRecorder(
                path, context={"job_id": "j1", "attempt": 1, "run_id": "r1"}
            )
        )
        _run(
            FORKY,
            progress=ProgressEstimator(interval_seconds=0.0),
            observer=observer,
        )
        observer.trace.close()
        assert lint_trace(path) == []
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "analysis emitted no progress events"
        assert all(e["job_id"] == "j1" for e in events)
        assert all(e["attempt"] == 1 for e in events)
        assert all(e["run_id"] == "r1" for e in events)

    def test_progress_gauges_are_set(self):
        observer = Observer(trace=TraceRecorder(io.StringIO()))
        _run(
            FORKY,
            progress=ProgressEstimator(interval_seconds=0.0),
            observer=observer,
        )
        assert observer.metrics.gauge("tracker.progress_fraction").value == 1.0
        assert observer.metrics.gauge("tracker.progress_pending").value == 0


class TestThrottling:
    def _attached(self, clock, interval=10.0):
        estimator = ProgressEstimator(
            interval_seconds=interval, clock=clock
        )
        program = assemble(FORKY, name="t")
        tracker = TaintTracker(
            program, default_policy(), progress=estimator
        )
        assert estimator._tracker is tracker
        return estimator

    def test_interval_gates_snapshots(self):
        clock = ManualClock()
        estimator = self._attached(clock, interval=10.0)
        estimator.update(pending=0)
        assert estimator.snapshots_taken == 1
        clock.advance(1.0)
        estimator.update(pending=0)
        assert estimator.snapshots_taken == 1  # too soon
        clock.advance(10.0)
        estimator.update(pending=0)
        assert estimator.snapshots_taken == 2

    def test_force_bypasses_the_interval(self):
        clock = ManualClock()
        estimator = self._attached(clock, interval=10.0)
        estimator.update(pending=0)
        estimator.update(pending=0, force=True)
        assert estimator.snapshots_taken == 2

    def test_tick_counter_gates_the_clock_probe(self):
        clock = ManualClock()
        estimator = self._attached(clock, interval=0.0)
        for _ in range(TICK_CHECK_INTERVAL - 1):
            estimator.tick(pending=0)
        assert estimator.snapshots_taken == 0
        estimator.tick(pending=0)
        assert estimator.snapshots_taken == 1

    def test_unattached_estimator_is_inert(self):
        estimator = ProgressEstimator(interval_seconds=0.0)
        estimator.update(pending=3)  # never attached: no tracker to read
        assert estimator.snapshots_taken == 0
        assert estimator.latest is None


class TestRateAndEta:
    def _attached(self, clock, budget=None):
        estimator = ProgressEstimator(interval_seconds=0.0, clock=clock)
        program = assemble(FORKY, name="t")
        TaintTracker(
            program,
            default_policy(),
            budget=budget or AnalysisBudget(),
            progress=estimator,
        )
        return estimator

    def test_eta_from_rate(self):
        clock = ManualClock()
        estimator = self._attached(clock)
        stats = estimator._tracker.stats
        stats.paths = 1
        estimator.update(pending=10)
        assert estimator.latest.rate_paths_per_s is None
        clock.advance(1.0)
        stats.paths = 3  # 2 paths/s
        estimator.update(pending=10)
        assert estimator.latest.rate_paths_per_s == 2.0
        assert estimator.latest.eta_seconds == 5.0

    def test_eta_is_capped_at_a_day(self):
        clock = ManualClock()
        estimator = self._attached(clock)
        stats = estimator._tracker.stats
        stats.paths = 1
        estimator.update(pending=10)
        clock.advance(1_000_000.0)
        stats.paths = 2  # one path per ~11 days
        estimator.update(pending=1_000)
        assert estimator.latest.eta_seconds == ETA_CAP_SECONDS

    def test_deadline_clamps_the_eta(self):
        clock = ManualClock()
        estimator = self._attached(
            clock, budget=AnalysisBudget(deadline_seconds=4.0)
        )
        stats = estimator._tracker.stats
        stats.paths = 1
        estimator.update(pending=1_000_000)
        clock.advance(1.0)
        stats.paths = 2
        estimator.update(pending=1_000_000)
        # Rate says ~1Ms; the 4s deadline wins.
        assert estimator.latest.eta_seconds is not None
        assert estimator.latest.eta_seconds <= 4.0

    def test_stalled_exploration_reports_zero_rate_no_eta(self):
        clock = ManualClock()
        estimator = self._attached(clock)
        stats = estimator._tracker.stats
        stats.paths = 5
        estimator.update(pending=3)
        clock.advance(5.0)
        estimator.update(pending=3)
        assert estimator.latest.rate_paths_per_s == 0.0
        assert estimator.latest.eta_seconds is None
