"""Checkpoint/resume: determinism, validation, cadence."""

import pytest

from repro.core import TaintTracker, default_policy
from repro.isa.assembler import assemble
from repro.resilience import (
    CHECKPOINT_VERSION,
    AnalysisInterrupted,
    CheckpointError,
    Checkpointer,
    read_checkpoint,
    read_checkpoint_header,
    write_checkpoint,
)

FORKY = """
.task sys trusted
start:
    mov &P3IN, r4
    bit #1, r4
    jz even
    mov #1, &P2OUT
    halt
even:
    mov #2, &P2OUT
    halt
"""

OTHER = """
.task sys trusted
    mov #21, r4
    add r4, r4
    mov r4, &P2OUT
    halt
"""


def _tracker(source=FORKY, name="forky", **kwargs):
    program = assemble(source, name=name)
    return TaintTracker(program, default_policy(), **kwargs)


def _interrupt_after(tracker, paths):
    """Arrange a one-shot cooperative interrupt after *paths* paths."""
    original = tracker._explore_path
    fired = []

    def wrapper(*args, **kwargs):
        original(*args, **kwargs)
        if not fired and tracker.stats.paths >= paths:
            fired.append(True)
            tracker.request_interrupt("test")

    tracker._explore_path = wrapper
    return tracker


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(
            path, "digest123", {"x": 1}, meta={"paths": 7}
        )
        header = read_checkpoint_header(path)
        assert header["version"] == CHECKPOINT_VERSION
        assert header["digest"] == "digest123"
        assert header["paths"] == 7
        assert read_checkpoint(path, "digest123") == {"x": 1}

    def test_stale_digest_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, "digest123", {"x": 1})
        with pytest.raises(CheckpointError) as info:
            read_checkpoint(path, "otherdigest")
        assert info.value.code == "CHECKPOINT_STALE"
        assert "scratch" in str(info.value)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError) as info:
            read_checkpoint_header(path)
        assert info.value.code == "CHECKPOINT_CORRUPT"

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(
            b"REPRO-CKPT\n" + b'{"version": 999, "digest": "d"}\n'
        )
        with pytest.raises(CheckpointError) as info:
            read_checkpoint_header(path)
        assert info.value.code == "CHECKPOINT_VERSION"

    def test_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_checkpoint(path, "d", {"x": 1})
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # truncate the pickle
        with pytest.raises(CheckpointError) as info:
            read_checkpoint(path, "d")
        assert info.value.code == "CHECKPOINT_CORRUPT"

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError) as info:
            read_checkpoint_header(tmp_path / "nope.ckpt")
        assert info.value.code == "CHECKPOINT_READ"


class TestDigest:
    def test_digest_is_stable_across_trackers(self):
        assert _tracker().config_digest() == _tracker().config_digest()

    def test_digest_distinguishes_programs(self):
        a = _tracker(FORKY, "a").config_digest()
        b = _tracker(OTHER, "b").config_digest()
        assert a != b


class TestInterruptResume:
    def test_interrupt_saves_and_resume_matches(self, tmp_path):
        baseline = _tracker().run()
        assert baseline.verdict == "secure"

        ckpt = tmp_path / "run.ckpt"
        tracker = _interrupt_after(
            _tracker(checkpointer=Checkpointer(ckpt)), paths=1
        )
        with pytest.raises(AnalysisInterrupted) as info:
            tracker.run()
        assert info.value.checkpoint_path == str(ckpt)
        assert ckpt.exists()

        fresh = _tracker()
        payload = read_checkpoint(ckpt, fresh.config_digest())
        fresh.restore_checkpoint(payload)
        resumed = fresh.run()
        assert resumed.verdict == baseline.verdict
        assert resumed.stats.paths == baseline.stats.paths
        assert [v.kind for v in resumed.violations] == [
            v.kind for v in baseline.violations
        ]

    def test_in_process_rerun_after_interrupt(self):
        baseline = _tracker().run()
        tracker = _interrupt_after(_tracker(), paths=1)
        with pytest.raises(AnalysisInterrupted):
            tracker.run()
        # The worklist survives in the tracker: calling run() again
        # continues in-process and reaches the uninterrupted verdict.
        resumed = tracker.run()
        assert resumed.verdict == baseline.verdict
        assert resumed.stats.paths == baseline.stats.paths

    def test_resumed_violations_match_on_insecure_program(self, tmp_path):
        vulnerable = """
.task sys trusted
start:
    mov #0x07FE, sp
    call #app
    jmp start
.task app untrusted
app:
    mov &P1IN, r4
    mov &P1IN, r5
    mov r5, 0(r4)
    ret
"""
        baseline = _tracker(vulnerable, "vuln").run()
        assert baseline.verdict == "insecure"

        ckpt = tmp_path / "vuln.ckpt"
        tracker = _interrupt_after(
            _tracker(vulnerable, "vuln", checkpointer=Checkpointer(ckpt)),
            paths=1,
        )
        try:
            tracker.run()
        except AnalysisInterrupted:
            fresh = _tracker(vulnerable, "vuln")
            fresh.restore_checkpoint(
                read_checkpoint(ckpt, fresh.config_digest())
            )
            resumed = fresh.run()
        else:  # finished before the interrupt could fire
            resumed = baseline
        assert resumed.verdict == baseline.verdict
        assert sorted(v.kind for v in resumed.violations) == sorted(
            v.kind for v in baseline.violations
        )

    def test_stale_checkpoint_cannot_cross_programs(self, tmp_path):
        ckpt = tmp_path / "a.ckpt"
        tracker = _tracker()
        Checkpointer(ckpt).save(tracker, reason="test")
        other = _tracker(OTHER, "other")
        with pytest.raises(CheckpointError) as info:
            read_checkpoint(ckpt, other.config_digest())
        assert info.value.code == "CHECKPOINT_STALE"


class TestCadence:
    def test_due_every_n_paths(self):
        checkpointer = Checkpointer("/tmp/unused.ckpt", every_paths=2)
        assert not checkpointer.due(1)
        assert checkpointer.due(2)
        checkpointer._last_saved_paths = 2
        assert not checkpointer.due(3)
        assert checkpointer.due(4)

    def test_zero_cadence_never_due(self):
        checkpointer = Checkpointer("/tmp/unused.ckpt", every_paths=0)
        assert not checkpointer.due(10**6)

    def test_periodic_saves_during_run(self, tmp_path):
        ckpt = tmp_path / "cad.ckpt"
        checkpointer = Checkpointer(ckpt, every_paths=1)
        result = _tracker(checkpointer=checkpointer).run()
        assert result.verdict == "secure"
        assert checkpointer.saves >= 1
        assert ckpt.exists()
